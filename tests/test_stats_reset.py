"""Warmup-boundary stats reset: counters clear, microarchitectural state stays.

Regression tests for warmup leakage into measurement-window statistics —
structure-owned counters (xPTP's avoided evictions, MSHR event counts) used
to survive ``simulate``'s warmup boundary and inflate the reported metrics.
"""

from dataclasses import replace

from repro.cache.mshr import MSHRFile
from repro.common.params import scaled_config
from repro.common.stats import LevelStats
from repro.common.types import AccessType, RequestType
from repro.core.simulator import simulate
from repro.mem.dram import DRAM
from repro.workloads.server import ServerWorkload

from .helpers import load


class TestMSHRReset:
    def test_counters_clear_but_entries_survive(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x40, RequestType.LOAD)
        mshrs.allocate(0x40, RequestType.LOAD)        # merge
        mshrs.allocate(0x80, RequestType.LOAD)
        mshrs.allocate(0xC0, RequestType.LOAD)        # full event
        assert (mshrs.allocations, mshrs.merges, mshrs.full_events) == (3, 1, 1)

        mshrs.reset_stats()
        assert (mshrs.allocations, mshrs.merges, mshrs.full_events) == (0, 0, 0)
        # Outstanding entries are state, not statistics.
        assert len(mshrs) == 2
        assert mshrs.lookup(0xC0) is not None

    def test_leak_on_reset_clears_retirements_but_keeps_retired_buffer(self):
        """synapse32 leak-on-reset regression (found by the MSHR machine).

        ``retirements`` is a statistic and must clear at the boundary; the
        retirement *buffer* is outstanding state and must survive it — a
        reset between retirement and release must not cost the in-flight
        fill its Type bits.
        """
        mshrs = MSHRFile(1)
        mshrs.allocate(0x40, RequestType.PTW, is_pte=True,
                       translation_type=AccessType.DATA)
        mshrs.allocate(0x80, RequestType.LOAD)   # retires 0x40
        assert mshrs.retirements == 1

        mshrs.reset_stats()
        assert mshrs.retirements == 0
        assert mshrs.outstanding() == 2          # retired entry survived
        entry = mshrs.release(0x40)
        assert entry is not None
        assert entry.is_pte
        assert entry.translation_type is AccessType.DATA


class TestDRAMRowCounterReset:
    """Regression: ``row_hits``/``row_misses`` used to survive the warmup
    boundary (and were never exported), so row-buffer locality numbers
    included warmup traffic."""

    def test_counters_clear_but_open_rows_survive(self):
        cfg = replace(scaled_config().dram, row_buffer=True, banks=2)
        dram = DRAM(cfg, LevelStats("DRAM"))
        dram.access(load(0x0))
        dram.access(load(0x0))      # row hit
        dram.access(load(cfg.row_bytes * cfg.banks))  # same bank, new row
        assert dram.row_hits == 1 and dram.row_misses == 2

        dram.reset_stats()
        assert dram.row_hits == 0 and dram.row_misses == 0
        # Open-row *state* survives: re-touching the open row hits again.
        dram.access(load(cfg.row_bytes * cfg.banks))
        assert dram.row_hits == 1

    def test_row_counters_exported_and_cover_measurement_only(self):
        cfg = replace(scaled_config(), dram=replace(
            scaled_config().dram, row_buffer=True))
        full = run(cfg, 0, 30_000)
        measured = run(cfg, 20_000, 10_000)
        for key in ("dram.row_hits", "dram.row_misses"):
            assert full.get(key) > 0
            assert 0 < measured.get(key) < full.get(key)


def run(config, warmup, measure, seed=3):
    wl = ServerWorkload("reset", seed, code_pages=96, data_pages=2500,
                        hot_data_pages=64, warm_pages=600, local_pages=16)
    return simulate(config, wl, warmup, measure)


class TestWarmupBoundary:
    def test_mshr_counters_cover_only_measurement_window(self):
        cfg = scaled_config()
        full = run(cfg, 0, 30_000)
        measured = run(cfg, 20_000, 10_000)
        for key in ("l1d.mshr_allocations", "l2c.mshr_allocations",
                    "stlb.mshr_allocations"):
            assert full.get(key) > 0
            # Warmup activity must not leak: the 10k-instruction window has
            # to report far fewer events than the whole 30k-instruction run.
            assert 0 < measured.get(key) < 0.8 * full.get(key)

    def test_xptp_counter_covers_only_measurement_window(self):
        cfg = replace(
            scaled_config().with_policies(stlb="itp", l2c="xptp"),
            adaptive=replace(scaled_config().adaptive, enabled=False),
        )
        full = run(cfg, 0, 30_000)
        measured = run(cfg, 20_000, 10_000)
        key = "xptp.protected_evictions_avoided"
        assert full.get(key) > 0
        assert measured.get(key) < full.get(key)

    def test_metrics_exported_after_simulation(self):
        cfg = scaled_config().with_policies(stlb="itp", l2c="xptp")
        result = run(cfg, 2_000, 8_000)
        for key in ("xptp.protected_evictions_avoided", "l1i.mshr_allocations",
                    "l1d.mshr_merges", "llc.mshr_full_events",
                    "llc.mshr_retirements"):
            assert key in result.metrics
