"""Unit tests for STLB replacement policies — iTP semantics per Figure 5."""

import pytest

from repro.common.params import ITPConfig
from repro.common.types import AccessType
from repro.tlb.entry import TLBEntry
from repro.tlb.policies.chirp import CHiRPPolicy, CONF_THRESHOLD
from repro.tlb.policies.itp import ITPPolicy
from repro.tlb.policies.lru import TLBLRUPolicy
from repro.tlb.policies.probabilistic import ProbabilisticLRUPolicy
from repro.tlb.policies.registry import available_tlb_policies, make_tlb_policy

I = AccessType.INSTRUCTION
D = AccessType.DATA


def entries(n=12):
    return [TLBEntry(valid=True, vpn=i) for i in range(n)]


def fill(policy, ents, types):
    for way, t in enumerate(types):
        ents[way].access_type = t
        policy.on_insert(0, way, ents, t)


class TestTLBLRU:
    def test_victim_is_lru(self):
        policy = TLBLRUPolicy(1, 4)
        ents = entries(4)
        fill(policy, ents, [D, D, D, D])
        assert policy.victim(0, ents) == 0

    def test_hit_promotes(self):
        policy = TLBLRUPolicy(1, 4)
        ents = entries(4)
        fill(policy, ents, [D] * 4)
        policy.on_hit(0, 0, ents, D)
        assert policy.victim(0, ents) == 1


class TestITPInsertion:
    """Figure 5, steps 1-4."""

    def make(self, assoc=12, n=4, m=8):
        return ITPPolicy(1, assoc, ITPConfig(insert_depth_n=n, data_promote_m=m))

    def test_data_inserted_at_lru(self):
        policy = self.make()
        ents = entries()
        fill(policy, ents, [I] * 11 + [D])
        # Step 1: the fresh data entry has highest eviction priority.
        assert policy.victim(0, ents) == 11

    def test_instruction_inserted_n_below_mru(self):
        policy = self.make(n=4)
        ents = entries()
        fill(policy, ents, [I] * 12)
        # The last-inserted instruction sits at depth N, not MRU.
        assert policy.stacks[0].depth_from_mru(11) == 4

    def test_instruction_insert_resets_freq(self):
        policy = self.make()
        ents = entries()
        ents[0].freq = 5
        ents[0].access_type = I
        policy.on_insert(0, 0, ents, I)
        assert ents[0].freq == 0  # step 3

    def test_insertion_shifts_stack_down(self):
        policy = self.make(n=0)
        ents = entries(4)
        policy2 = ITPPolicy(1, 4, ITPConfig(insert_depth_n=0, data_promote_m=2))
        fill(policy2, ents, [I, I, I, I])
        # step 4: each new MRU insertion pushed the previous ones down.
        assert policy2.stacks[0].order() == [3, 2, 1, 0]


class TestITPPromotion:
    """Figure 5, steps i-iv."""

    def make(self, assoc=12, n=4, m=8, freq_bits=3):
        return ITPPolicy(
            1, assoc, ITPConfig(insert_depth_n=n, data_promote_m=m, freq_bits=freq_bits)
        )

    def test_unsaturated_instruction_promotes_to_n(self):
        policy = self.make(n=4)
        ents = entries()
        fill(policy, ents, [I] * 12)
        policy.on_hit(0, 0, ents, I)
        assert policy.stacks[0].depth_from_mru(0) == 4  # step i
        assert ents[0].freq == 1                         # step iii

    def test_saturated_instruction_promotes_to_mru(self):
        policy = self.make(n=4)
        ents = entries()
        fill(policy, ents, [I] * 12)
        ents[0].freq = 7
        policy.on_hit(0, 0, ents, I)
        assert policy.stacks[0].depth_from_mru(0) == 0   # step ii
        assert ents[0].freq == 7                          # not incremented past max

    def test_freq_saturates_after_max_hits(self):
        policy = self.make()
        ents = entries()
        fill(policy, ents, [I] * 12)
        for _ in range(20):
            policy.on_hit(0, 0, ents, I)
        assert ents[0].freq == 7

    def test_data_hit_promotes_m_above_lru(self):
        policy = self.make(m=8)
        ents = entries()
        fill(policy, ents, [I] * 11 + [D])
        policy.on_hit(0, 11, ents, D)
        assert policy.stacks[0].height_from_lru(11) == 8  # step iv

    def test_eviction_rule_is_lru(self):
        policy = self.make()
        ents = entries()
        fill(policy, ents, [D] * 12)
        assert policy.victim(0, ents) == policy.stacks[0].lru_way

    def test_mru_reserved_for_saturated_instructions(self):
        # A freshly inserted instruction can never land at MRU directly.
        policy = self.make(n=4)
        ents = entries()
        fill(policy, ents, [I] * 12)
        assert all(
            policy.stacks[0].depth_from_mru(w) != 0 or ents[w].freq == 0
            for w in range(12)
        )
        # the MRU way got there only because deeper insertions pushed it? No:
        # with N=4 the top 4 positions hold the oldest entries.
        assert policy.stacks[0].depth_from_mru(11) == 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ITPPolicy(1, 12, ITPConfig(insert_depth_n=12, data_promote_m=13))
        with pytest.raises(ValueError):
            ITPPolicy(1, 12, ITPConfig(insert_depth_n=4, data_promote_m=4))
        with pytest.raises(ValueError):
            ITPPolicy(1, 12, ITPConfig(insert_depth_n=4, data_promote_m=12))


class TestProbabilisticLRU:
    def test_p1_always_evicts_data(self):
        policy = ProbabilisticLRUPolicy(1, 4, p_evict_data=1.0)
        ents = entries(4)
        fill(policy, ents, [D, I, D, I])
        for _ in range(10):
            victim = policy.victim(0, ents)
            assert ents[victim].access_type == D

    def test_p0_always_evicts_instruction(self):
        policy = ProbabilisticLRUPolicy(1, 4, p_evict_data=0.0)
        ents = entries(4)
        fill(policy, ents, [D, I, D, I])
        for _ in range(10):
            victim = policy.victim(0, ents)
            assert ents[victim].access_type == I

    def test_falls_back_when_type_absent(self):
        policy = ProbabilisticLRUPolicy(1, 4, p_evict_data=1.0)
        ents = entries(4)
        fill(policy, ents, [I, I, I, I])
        assert policy.victim(0, ents) == 0  # overall LRU

    def test_victim_is_lru_of_chosen_type(self):
        policy = ProbabilisticLRUPolicy(1, 4, p_evict_data=1.0)
        ents = entries(4)
        fill(policy, ents, [D, D, I, I])
        assert policy.victim(0, ents) == 0

    def test_p_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticLRUPolicy(1, 4, p_evict_data=1.5)


class TestCHiRP:
    def test_signature_depends_on_history(self):
        policy = CHiRPPolicy(1, 4)
        sig0 = policy.signature(100)
        policy.observe_fetch_page(7)
        policy.observe_fetch_page(13)
        sig1 = policy.signature(100)
        assert sig0 != sig1

    def test_confident_signature_inserts_mru(self):
        policy = CHiRPPolicy(1, 4)
        ents = entries(4)
        fill(policy, ents, [D] * 4)
        ents[0].vpn = 999
        sig = policy.signature(999)
        policy.table[sig] = CONF_THRESHOLD
        policy.on_insert(0, 0, ents, D)
        assert policy.stacks[0].depth_from_mru(0) == 0

    def test_unconfident_signature_inserts_distant(self):
        policy = CHiRPPolicy(1, 4)
        ents = entries(4)
        fill(policy, ents, [D] * 4)
        ents[0].vpn = 999
        policy.table[policy.signature(999)] = 0
        policy.on_insert(0, 0, ents, D)
        assert policy.stacks[0].depth_from_mru(0) == policy._distant_depth

    def test_reuse_trains_up_once(self):
        policy = CHiRPPolicy(1, 4)
        ents = entries(4)
        fill(policy, ents, [D] * 4)
        sig = ents[0].signature
        before = policy.table[sig]
        policy.on_hit(0, 0, ents, D)
        policy.on_hit(0, 0, ents, D)
        assert policy.table[sig] == before + 1
        assert ents[0].reused

    def test_dead_eviction_trains_down(self):
        policy = CHiRPPolicy(1, 4)
        ents = entries(4)
        fill(policy, ents, [D] * 4)
        sig = ents[0].signature
        before = policy.table[sig]
        policy.on_evict(0, 0, ents)
        assert policy.table[sig] == before - 1


class TestTLBRegistry:
    def test_all_names(self):
        for name in available_tlb_policies():
            policy = make_tlb_policy(name, 8, 12)
            assert policy.num_sets == 8

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown TLB policy"):
            make_tlb_policy("optimal", 8, 4)

    def test_itp_config_passthrough(self):
        policy = make_tlb_policy("itp", 8, 12, itp_config=ITPConfig(insert_depth_n=1, data_promote_m=2))
        assert policy.config.insert_depth_n == 1

    def test_problru_p_passthrough(self):
        policy = make_tlb_policy("problru", 8, 4, p_evict_data=0.3)
        assert policy.p_evict_data == 0.3
