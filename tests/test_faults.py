"""Tests for the deterministic fault-injection harness (``repro.faults``)."""

import pytest

from repro.faults import (
    CACHE_TORN_WRITE,
    SITES,
    WORKER_CRASH,
    WORKER_HANG,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    active_plan,
    install_plan,
    parse_spec,
    plan_scope,
)
from repro.faults import plan as plan_mod


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    """Isolate each test from installed plans and the env-plan cache."""
    install_plan(None)
    plan_mod._env_cache = (None, None)
    yield
    install_plan(None)
    plan_mod._env_cache = (None, None)


class TestGrammar:
    def test_site_only_uses_defaults(self):
        spec = parse_spec("worker.crash")
        assert spec.site == WORKER_CRASH
        assert spec.probability == 1.0
        assert spec.seed == 0
        assert spec.max_fires is None
        assert spec.match == ""

    def test_full_form(self):
        spec = parse_spec("cache.torn-write:0.5:7:2:lru x w1")
        assert spec == FaultSpec(CACHE_TORN_WRITE, 0.5, 7, 2, "lru x w1")

    def test_empty_fields_fall_back_to_defaults(self):
        spec = parse_spec("worker.hang:::3:")
        assert spec == FaultSpec(WORKER_HANG, 1.0, 0, 3, "")

    def test_spec_string_round_trips(self):
        for text in (
            "worker.crash",
            "worker.hang:0.25:3",
            "cache.corrupt-write:1:0:1",
            "worker.crash:1:0::lru x w2",
        ):
            spec = parse_spec(text)
            assert parse_spec(spec.spec_string()) == spec

    def test_plan_round_trips_multiple_entries(self):
        plan = FaultPlan.parse("worker.crash:0.5:7, cache.torn-write:1:0:1")
        again = FaultPlan.parse(plan.spec_string())
        assert again.specs == plan.specs

    @pytest.mark.parametrize(
        "bad",
        [
            "worker.explode",          # unknown site
            "worker.crash:maybe",      # non-float probability
            "worker.crash:2",          # probability out of range
            "worker.crash:0.5:x",      # non-int seed
            "worker.crash:1:0:zero",   # non-int max fires
            "worker.crash:1:0:0",      # max fires < 1
            "worker.crash:1:0:1:a:b",  # too many fields
        ],
    )
    def test_bad_specs_raise_with_context(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)

    def test_duplicate_site_rejected(self):
        with pytest.raises(FaultSpecError, match="armed twice"):
            FaultPlan.parse("worker.crash,worker.crash:0.5")

    def test_empty_text_is_empty_plan(self):
        plan = FaultPlan.parse("")
        assert not plan
        assert not plan.would_fire(WORKER_CRASH, "any")


class TestFiring:
    def test_draw_is_deterministic(self):
        spec = FaultSpec(WORKER_CRASH, probability=0.5, seed=3)
        keys = [f"cell-{i}" for i in range(64)]
        first = [spec.would_fire(k) for k in keys]
        assert first == [spec.would_fire(k) for k in keys]
        # A 0.5 probability over 64 keys fires somewhere but not everywhere.
        assert any(first) and not all(first)

    def test_seed_changes_the_draw(self):
        keys = [f"cell-{i}" for i in range(64)]
        a = [FaultSpec(WORKER_CRASH, 0.5, seed=1).would_fire(k) for k in keys]
        b = [FaultSpec(WORKER_CRASH, 0.5, seed=2).would_fire(k) for k in keys]
        assert a != b

    def test_probability_bounds(self):
        always = FaultSpec(WORKER_CRASH, probability=1.0)
        never = FaultSpec(WORKER_CRASH, probability=0.0)
        assert all(always.would_fire(f"k{i}") for i in range(16))
        assert not any(never.would_fire(f"k{i}") for i in range(16))

    def test_match_filter(self):
        spec = FaultSpec(WORKER_CRASH, match="lru x w2")
        assert spec.would_fire("lru x w2")
        assert not spec.would_fire("itp x w2")

    def test_max_fires_caps_should_fire_but_not_would_fire(self):
        plan = FaultPlan([FaultSpec(WORKER_CRASH, max_fires=1)])
        assert plan.should_fire(WORKER_CRASH, "a")
        assert not plan.should_fire(WORKER_CRASH, "b")  # cap reached
        assert plan.would_fire(WORKER_CRASH, "b")       # pure query unaffected
        assert plan.fired[WORKER_CRASH] == 1

    def test_unarmed_site_never_fires(self):
        plan = FaultPlan([FaultSpec(WORKER_CRASH)])
        assert not plan.should_fire(WORKER_HANG, "a")
        assert not plan.would_fire(WORKER_HANG, "a")

    def test_all_sites_are_parseable(self):
        for site in SITES:
            assert parse_spec(site).site == site


class TestActivePlan:
    def test_env_arms_the_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.hang:0.5:9")
        plan = active_plan()
        assert plan is not None and plan.armed(WORKER_HANG)

    def test_env_change_is_picked_up(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.hang")
        assert active_plan().armed(WORKER_HANG)
        monkeypatch.setenv("REPRO_FAULTS", "worker.crash")
        assert active_plan().armed(WORKER_CRASH)
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_plan() is None

    def test_bad_env_raises_spec_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.crash:not-a-prob")
        with pytest.raises(FaultSpecError):
            active_plan()

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.hang")
        explicit = FaultPlan([FaultSpec(WORKER_CRASH)])
        install_plan(explicit)
        assert active_plan() is explicit

    def test_install_accepts_spec_strings(self):
        install_plan("worker.crash:0.5:7")
        assert active_plan().armed(WORKER_CRASH)
        install_plan("")
        assert active_plan() is None

    def test_plan_scope_restores(self):
        outer = FaultPlan([FaultSpec(WORKER_HANG)])
        install_plan(outer)
        with plan_scope(FaultPlan([FaultSpec(WORKER_CRASH)])):
            assert active_plan().armed(WORKER_CRASH)
        assert active_plan() is outer

    def test_plan_scope_none_is_noop(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.hang")
        with plan_scope(None):
            assert active_plan().armed(WORKER_HANG)
