"""repro.lint: each rule flags its fixture, passes its clean twin, and the
real tree is violation-free."""

from pathlib import Path

from repro.lint import lint_paths, lint_sources, render
from repro.lint.__main__ import main
from repro.lint.context import relkey_for

REPRO_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def codes(diags):
    return [d.code for d in diags]


class TestRelkey:
    def test_inside_repro_package(self):
        assert relkey_for("/root/repo/src/repro/cache/cache.py") == "cache/cache.py"

    def test_innermost_repro_wins(self):
        assert relkey_for("/repro/old/src/repro/tlb/tlb.py") == "tlb/tlb.py"

    def test_outside_repro_falls_back_to_basename(self):
        assert relkey_for("/tmp/scratch/foo.py") == "foo.py"


class TestRPR001Allocations:
    def test_manifest_hot_function_flags_allocations(self):
        src = (
            "class SetAssociativeCache:\n"
            "    def access(self, req):\n"
            "        a = {'k': 1}\n"
            "        b = [x for x in range(3)]\n"
            "        c = f'{a}'\n"
            "        d = CacheLine()\n"
            "        e = lambda: 1\n"
            "        f = list(b)\n"
        )
        diags = lint_sources({"cache/cache.py": src})
        assert codes(diags).count("RPR001") == 6

    def test_hot_marker_opts_in_any_function(self):
        src = (
            "def helper():  # repro: hot\n"
            "    return {'a': 1}\n"
        )
        diags = lint_sources({"workloads/foo.py": src})
        assert codes(diags) == ["RPR001"]

    def test_clean_hot_function_passes(self):
        src = (
            "class TLB:\n"
            "    def lookup(self, vaddr, access_type):\n"
            "        way = self._key_maps[0].get(vaddr)\n"
            "        self.stats.hits += 1\n"
            "        return way\n"
        )
        assert lint_sources({"tlb/tlb.py": src}) == []

    def test_raise_and_assert_subtrees_are_exempt(self):
        src = (
            "class Stack:\n"
            "    def touch(self, way):  # repro: hot\n"
            "        if way not in self._next:\n"
            "            raise ValueError(f'way {way} missing')\n"
            "        assert way >= 0, f'bad {way}'\n"
        )
        assert lint_sources({"common/recency.py": src}) == []

    def test_cold_function_in_hot_module_is_ignored(self):
        src = (
            "class TLB:\n"
            "    def occupancy(self):\n"
            "        return sum(len(m) for m in self._key_maps)\n"
        )
        assert lint_sources({"tlb/tlb.py": src}) == []

    def test_suppression_on_line_and_line_above(self):
        src = (
            "class DRAM:\n"
            "    def access(self, req):\n"
            "        a = Result()  # repro: allow[RPR001]\n"
            "        # repro: allow[RPR001]\n"
            "        b = Result()\n"
            "        c = Result()\n"
        )
        diags = lint_sources({"mem/dram.py": src})
        assert [(d.code, d.line) for d in diags] == [("RPR001", 6)]


class TestRPR002Slots:
    def test_unslotted_hot_class_is_flagged(self):
        src = "class CacheLine:\n    def __init__(self):\n        self.valid = False\n"
        diags = lint_sources({"cache/line.py": src})
        assert codes(diags) == ["RPR002"]

    def test_slots_declaration_passes(self):
        src = "class CacheLine:\n    __slots__ = ('valid',)\n"
        assert lint_sources({"cache/line.py": src}) == []

    def test_dataclass_slots_true_passes(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(slots=True)\n"
            "class MemoryRequest:\n"
            "    address: int = 0\n"
        )
        assert lint_sources({"common/types.py": src}) == []

    def test_dataclass_without_slots_is_flagged(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class TLBEntry:\n"
            "    vpn: int = 0\n"
        )
        assert codes(lint_sources({"tlb/entry.py": src})) == ["RPR002"]

    def test_namedtuple_is_exempt(self):
        src = (
            "from typing import NamedTuple\n"
            "class AccessResult(NamedTuple):\n"
            "    latency: int\n"
        )
        assert lint_sources({"common/types.py": src}) == []

    def test_non_hot_class_is_ignored(self):
        src = "class ScratchThing:\n    pass\n"
        assert lint_sources({"cache/line.py": src}) == []


class TestRPR003EnumComparison:
    def test_direct_member_eq_is_flagged(self):
        src = "def f(t):\n    return t == AccessType.DATA\n"
        diags = lint_sources({"tlb/hierarchy.py": src})
        assert codes(diags) == ["RPR003"]
        assert "'is'" in diags[0].message

    def test_noteq_suggests_is_not(self):
        src = "def f(t):\n    return t != RequestType.LOAD\n"
        diags = lint_sources({"cache/cache.py": src})
        assert "'is not'" in diags[0].message

    def test_module_alias_is_recognised(self):
        src = (
            "_DATA = AccessType.DATA\n"
            "def f(t):\n"
            "    return t == _DATA\n"
        )
        assert codes(lint_sources({"mem/dram.py": src})) == ["RPR003"]

    def test_identity_comparison_passes(self):
        src = (
            "_DATA = AccessType.DATA\n"
            "def f(t):\n"
            "    return t is _DATA or t is AccessType.INSTRUCTION\n"
        )
        assert lint_sources({"mem/dram.py": src}) == []

    def test_plain_comparisons_pass(self):
        src = "def f(a, b):\n    return a == b or a != 0\n"
        assert lint_sources({"cache/cache.py": src}) == []

    def test_cold_modules_are_out_of_scope(self):
        src = "def f(t):\n    return t == AccessType.DATA\n"
        assert lint_sources({"experiments/foo.py": src}) == []


class TestRPR004StatsReset:
    def test_undeclared_counter_is_flagged(self):
        src = (
            "class TLB:\n"
            "    def record(self):\n"
            "        self.stats.bogus_counter += 1\n"
        )
        diags = lint_sources({"tlb/tlb.py": src})
        assert codes(diags) == ["RPR004"]
        assert "not declared" in diags[0].message

    def test_declared_and_reset_counter_passes(self):
        src = (
            "class TLB:\n"
            "    def record(self):\n"
            "        self.stats.misses += 1\n"
            "        stats = self.stats\n"
            "        stats.cat_misses['d'] += 1\n"
            "        stats.front_stall_cycles += 2\n"
        )
        assert lint_sources({"tlb/tlb.py": src}) == []

    def test_stats_bearing_class_without_reset_is_flagged(self):
        src = (
            "class DRAM:\n"
            "    def __init__(self):\n"
            "        self.row_hits = 0\n"
        )
        diags = lint_sources({"mem/dram.py": src})
        assert codes(diags) == ["RPR004"]
        assert "no reset_stats" in diags[0].message

    def test_counter_missing_from_reset_is_flagged(self):
        src = (
            "class DRAM:\n"
            "    def __init__(self):\n"
            "        self.row_hits = 0\n"
            "        self.row_misses = 0\n"
            "    def reset_stats(self):\n"
            "        self.row_hits = 0\n"
        )
        diags = lint_sources({"mem/dram.py": src})
        assert [(d.code, "row_misses" in d.message) for d in diags] == [("RPR004", True)]

    def test_private_state_and_nonzero_attrs_are_ignored(self):
        src = (
            "class DRAM:\n"
            "    def __init__(self, cfg):\n"
            "        self._window = 0\n"
            "        self.latency = cfg.latency\n"
            "        self.enabled = True\n"
        )
        assert lint_sources({"mem/dram.py": src}) == []

    def test_state_counter_opt_out_via_allow(self):
        src = (
            "class MMU:\n"
            "    def __init__(self):\n"
            "        self.window_events = 0  # repro: allow[RPR004]\n"
            "    def reset_stats(self):\n"
            "        pass\n"
        )
        assert lint_sources({"tlb/hierarchy.py": src}) == []


class TestRPR005ParamsImmutability:
    def test_write_through_config_is_flagged(self):
        src = (
            "class Sim:\n"
            "    def tweak(self):\n"
            "        self.config.stlb.latency = 20\n"
        )
        diags = lint_sources({"core/simulator.py": src})
        assert codes(diags) == ["RPR005"]

    def test_table1_root_write_is_flagged(self):
        src = "from repro.common.params import TABLE1\nTABLE1.stlb = None\n"
        assert codes(lint_sources({"experiments/foo.py": src})) == ["RPR005"]

    def test_setattr_on_config_is_flagged(self):
        src = "def f(cfg):\n    object.__setattr__(cfg.config, 'latency', 1)\n"
        assert codes(lint_sources({"core/system.py": src})) == ["RPR005"]

    def test_rebinding_config_attribute_is_fine(self):
        src = (
            "class Sim:\n"
            "    def __init__(self, config):\n"
            "        self.config = config\n"
        )
        assert lint_sources({"core/simulator.py": src}) == []

    def test_params_module_itself_is_exempt(self):
        src = "def _build():\n    TABLE1.stlb = 1\n"
        assert lint_sources({"common/params.py": src}) == []


class TestRPR006TopologyConstruction:
    def test_direct_construction_is_flagged(self):
        src = (
            "def wire(config, stats):\n"
            "    l2c = SetAssociativeCache(config.l2c, pol, nxt, stats, None)\n"
            "    itlb = tlb_module.TLB(config.itlb, pol, stats)\n"
            "    mem = DRAM(config.dram, stats)\n"
        )
        diags = lint_sources({"core/system.py": src})
        assert codes(diags) == ["RPR006", "RPR006", "RPR006"]

    def test_topology_package_is_the_sanctioned_layer(self):
        src = (
            "def build_cache(node, config, next_level, stats):\n"
            "    return SetAssociativeCache(node.config, pol, next_level, stats, None)\n"
        )
        assert lint_sources({"topology/structures.py": src}) == []

    def test_suppression_comment_is_honoured(self):
        src = (
            "def fixture(stats):\n"
            "    return TLB(cfg, pol, stats)  # repro: allow[RPR006]\n"
        )
        assert lint_sources({"tlb/fixtures.py": src}) == []

    def test_unrelated_calls_pass(self):
        src = "def f(spec):\n    return build(spec, config)\n"
        assert lint_sources({"core/system.py": src}) == []


class TestRunnerAndCLI:
    def test_syntax_error_becomes_rpr000(self):
        diags = lint_sources({"cache/broken.py": "def f(:\n"})
        assert codes(diags) == ["RPR000"]

    def test_render_text_and_github(self):
        diags = lint_sources({"cache/line.py": "class CacheLine:\n    pass\n"})
        (text,) = render(diags, "text")
        assert text.startswith("cache/line.py:1:")
        assert " RPR002 " in text
        (gh,) = render(diags, "github")
        assert gh.startswith("::error file=cache/line.py,line=1,")
        assert "endLine=" in gh and "col=" in gh and "title=RPR002::" in gh

    def test_cli_clean_tree_exits_zero(self, capsys):
        assert main([str(REPRO_ROOT)]) == 0
        assert capsys.readouterr().out == ""

    def test_cli_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "cache"
        bad.mkdir(parents=True)
        (bad / "line.py").write_text("class CacheLine:\n    pass\n")
        assert main([str(tmp_path), "--format=github"]) == 1
        out = capsys.readouterr()
        assert "::error" in out.out and "RPR002" in out.out

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
            "RPR008",
            "RPR009",
        ):
            assert code in out


class TestTreeIsViolationFree:
    def test_full_repro_tree_passes_every_rule(self):
        diags = lint_paths([str(REPRO_ROOT)])
        assert diags == [], "\n".join(render(diags))
