"""Golden regression tests.

The simulator is deterministic end to end (seeded RNGs everywhere), so a
fixed workload/config pair must reproduce the same headline metrics on
every run.  These tests freeze a small scenario's outputs with loose
tolerances (±10 %) — wide enough to survive intentional model retuning
only if it is *declared* by updating the constants here, and tight enough
to catch accidental behavioural drift in the substrate.
"""

import pytest

from repro.common.params import TABLE1, scaled_config
from repro.common.recency import NaiveRecencyStack
from repro.core.simulator import simulate
from repro.replacement.lru import LRUPolicy
from repro.tlb.policies.lru import TLBLRUPolicy
from repro.workloads.server import ServerWorkload

GOLDEN_WORKLOAD = dict(
    code_pages=128, data_pages=4000, hot_data_pages=96, warm_pages=1200,
    local_pages=32, seed=2024,
)


@pytest.fixture(scope="module")
def golden_run():
    wl = ServerWorkload("golden", **GOLDEN_WORKLOAD)
    return simulate(scaled_config(), wl, 30_000, 100_000)


class TestGoldenMetrics:
    def test_ipc(self, golden_run):
        assert golden_run.ipc == pytest.approx(0.747, rel=0.10)

    def test_stlb_mpki(self, golden_run):
        assert golden_run.get("stlb.mpki") == pytest.approx(7.7, rel=0.15)

    def test_instruction_share(self, golden_run):
        impki = golden_run.get("stlb.impki")
        dmpki = golden_run.get("stlb.dmpki")
        assert 0.1 < impki / dmpki < 0.8

    def test_llc_mpki_band(self, golden_run):
        assert 5.0 < golden_run.get("llc.mpki") < 40.0

    def test_exact_repeatability(self, golden_run):
        wl = ServerWorkload("golden", **GOLDEN_WORKLOAD)
        again = simulate(scaled_config(), wl, 30_000, 100_000)
        assert again.metrics == golden_run.metrics


class TestStackBitIdentity:
    """The O(1) recency stack must be *bit-identical* to the seed's list-based
    stack: one full (technique, workload) cell run on each implementation has
    to produce exactly the same metric report, not merely similar numbers.

    The iTP+xPTP cell is the discriminating one — it exercises every stack
    operation the paper's policies use: ``place_at_depth`` (iTP's MRU-N
    insert), ``place_above_lru`` (iTP's LRU+M data promotion),
    ``ways_from_lru`` (xPTP's victim scan), ``touch`` and eviction cleanup.
    """

    CELL_WORKLOAD = dict(
        code_pages=96, data_pages=3000, hot_data_pages=64, warm_pages=800,
        local_pages=16, seed=7,
    )

    def _run_cell(self):
        cfg = scaled_config().with_policies(stlb="itp", l2c="xptp")
        wl = ServerWorkload("bit_identity", **self.CELL_WORKLOAD)
        return simulate(cfg, wl, 10_000, 40_000)

    def test_linked_stack_cell_matches_naive_reference(self, monkeypatch):
        fast = self._run_cell()
        # Swap the reference model in under every stack-based policy (iTP,
        # xPTP, PTP, CHiRP and problru all subclass the two LRU policies).
        monkeypatch.setattr(LRUPolicy, "stack_cls", NaiveRecencyStack)
        monkeypatch.setattr(TLBLRUPolicy, "stack_cls", NaiveRecencyStack)
        slow = self._run_cell()
        assert slow.metrics == fast.metrics


class TestFullScaleTable1:
    """The unscaled Table 1 system must also run (short smoke)."""

    def test_table1_smoke(self):
        wl = ServerWorkload("full", seed=5)
        result = simulate(TABLE1, wl, 5_000, 20_000)
        assert result.ipc > 0
        # At full scale the structures dwarf the (scaled) workload, so the
        # system is much faster than the scaled golden run.
        assert result.get("stlb.mpki") < 25.0

    def test_table1_with_itp_xptp(self):
        wl = ServerWorkload("full", seed=5)
        cfg = TABLE1.with_policies(stlb="itp", l2c="xptp")
        result = simulate(cfg, wl, 5_000, 20_000)
        assert result.ipc > 0
