"""Unit tests for the MSHR file (the Type-bit dataflow of Figure 7)."""

import pytest

from repro.cache.mshr import CheckedMSHRFile, MSHRFile
from repro.common.invariants import InvariantViolation
from repro.common.types import AccessType, RequestType


class TestAllocation:
    def test_allocate_and_release(self):
        mshrs = MSHRFile(4)
        entry = mshrs.allocate(0x10, RequestType.LOAD)
        assert len(mshrs) == 1
        released = mshrs.release(0x10)
        assert released is entry
        assert len(mshrs) == 0

    def test_release_missing_returns_none(self):
        assert MSHRFile(4).release(0x99) is None

    def test_lookup(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.LOAD)
        assert mshrs.lookup(0x10) is not None
        assert mshrs.lookup(0x11) is None

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestTypeBit:
    def test_pte_type_recorded(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.PTW, is_pte=True, translation_type=AccessType.DATA)
        entry = mshrs.release(0x10)
        assert entry.is_pte
        assert entry.translation_type == AccessType.DATA

    def test_merge_counts(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.LOAD)
        mshrs.allocate(0x10, RequestType.LOAD)
        assert mshrs.allocations == 1
        assert mshrs.merges == 1
        assert len(mshrs) == 1

    def test_merge_strengthens_to_pte(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.LOAD)
        mshrs.allocate(0x10, RequestType.PTW, is_pte=True, translation_type=AccessType.DATA)
        entry = mshrs.release(0x10)
        assert entry.is_pte
        assert entry.translation_type == AccessType.DATA

    def test_merge_data_type_dominates(self):
        # Once any requester marks the line a data PTE, the bit sticks.
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.PTW, True, AccessType.INSTRUCTION)
        mshrs.allocate(0x10, RequestType.PTW, True, AccessType.DATA)
        assert mshrs.release(0x10).translation_type == AccessType.DATA

    def test_merge_does_not_weaken(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.PTW, True, AccessType.DATA)
        mshrs.allocate(0x10, RequestType.PTW, True, AccessType.INSTRUCTION)
        assert mshrs.release(0x10).translation_type == AccessType.DATA


class TestStructuralHazard:
    def test_full_file_evicts_oldest(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, RequestType.LOAD)
        mshrs.allocate(2, RequestType.LOAD)
        mshrs.allocate(3, RequestType.LOAD)
        assert mshrs.full_events == 1
        assert mshrs.lookup(1) is None
        assert mshrs.lookup(3) is not None

    def test_structural_penalty_only_when_full(self):
        mshrs = MSHRFile(2, full_penalty=5)
        assert mshrs.structural_penalty() == 0
        mshrs.allocate(1, RequestType.LOAD)
        mshrs.allocate(2, RequestType.LOAD)
        assert mshrs.structural_penalty() == 5


class TestStructuralRetirement:
    """Minimized regressions from the MSHR protocol machine.

    Structural retirement used to ``pop`` the oldest entry and drop it on
    the floor, so the in-flight ``release`` of that block returned ``None``
    and its Type bits never reached the cache block — Figure 7 step 3.1
    silently disabled exactly when MSHR pressure was highest.
    """

    def test_retired_entry_release_preserves_type_bits(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, RequestType.PTW, True, AccessType.DATA)
        mshrs.allocate(2, RequestType.LOAD)
        mshrs.allocate(3, RequestType.LOAD)  # full: retires block 1
        assert mshrs.full_events == 1
        assert mshrs.retirements == 1
        entry = mshrs.release(1)
        assert entry is not None, "structural retirement dropped the entry"
        assert entry.is_pte
        assert entry.translation_type is AccessType.DATA

    def test_retired_entries_count_as_outstanding_not_live(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, RequestType.LOAD)
        mshrs.allocate(2, RequestType.LOAD)
        mshrs.allocate(3, RequestType.LOAD)
        assert len(mshrs) == 2          # capacity semantics unchanged
        assert mshrs.outstanding() == 3  # but the retired miss is not gone
        mshrs.release(1)
        assert mshrs.outstanding() == 2

    def test_reallocation_folds_retired_type_bits(self):
        # Two misses to one block are one outstanding miss: if the first was
        # retired as a data PTE, the re-allocated entry must carry the mark.
        mshrs = MSHRFile(1)
        mshrs.allocate(1, RequestType.PTW, True, AccessType.DATA)
        mshrs.allocate(2, RequestType.LOAD)   # retires block 1
        mshrs.allocate(1, RequestType.LOAD)   # retires block 2, re-allocates 1
        entry = mshrs.release(1)
        assert entry.is_pte
        assert entry.translation_type is AccessType.DATA
        assert mshrs.outstanding() == 1       # block 2 still awaits release

    def test_lookup_misses_retired_entries(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, RequestType.LOAD)
        mshrs.allocate(2, RequestType.LOAD)
        mshrs.allocate(3, RequestType.LOAD)
        assert mshrs.lookup(1) is None  # retired: no longer a mergeable miss


class TestCheckedShadow:
    """The shadow oracle must span retired entries and never desynchronize."""

    def test_shadow_stays_synchronized_through_retirement(self):
        mshrs = CheckedMSHRFile(2)
        mshrs.allocate(1, RequestType.PTW, True, AccessType.DATA)
        mshrs.allocate(2, RequestType.LOAD)
        mshrs.allocate(3, RequestType.LOAD)  # retires block 1
        mshrs.verify_shadow_sync()
        assert mshrs.release(1).translation_type is AccessType.DATA
        mshrs.verify_shadow_sync()
        mshrs.release(2)
        mshrs.release(3)
        mshrs.verify_shadow_sync()
        assert mshrs.outstanding() == 0

    def test_release_of_unknown_block_keeps_shadow_synchronized(self):
        mshrs = CheckedMSHRFile(2)
        mshrs.allocate(1, RequestType.LOAD)
        assert mshrs.release(99) is None
        mshrs.verify_shadow_sync()

    def test_shadow_detects_corrupted_bits(self):
        mshrs = CheckedMSHRFile(2)
        entry = mshrs.allocate(1, RequestType.PTW, True, AccessType.DATA)
        entry.translation_type = AccessType.INSTRUCTION  # simulated corruption
        with pytest.raises(InvariantViolation):
            mshrs.release(1)

    def test_desynchronized_shadow_is_reported(self):
        mshrs = CheckedMSHRFile(2)
        mshrs.allocate(1, RequestType.LOAD)
        mshrs._shadow.pop(1)  # simulated bookkeeping bug
        with pytest.raises(InvariantViolation):
            mshrs.verify_shadow_sync()
