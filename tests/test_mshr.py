"""Unit tests for the MSHR file (the Type-bit dataflow of Figure 7)."""

import pytest

from repro.cache.mshr import MSHRFile
from repro.common.types import AccessType, RequestType


class TestAllocation:
    def test_allocate_and_release(self):
        mshrs = MSHRFile(4)
        entry = mshrs.allocate(0x10, RequestType.LOAD)
        assert len(mshrs) == 1
        released = mshrs.release(0x10)
        assert released is entry
        assert len(mshrs) == 0

    def test_release_missing_returns_none(self):
        assert MSHRFile(4).release(0x99) is None

    def test_lookup(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.LOAD)
        assert mshrs.lookup(0x10) is not None
        assert mshrs.lookup(0x11) is None

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestTypeBit:
    def test_pte_type_recorded(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.PTW, is_pte=True, translation_type=AccessType.DATA)
        entry = mshrs.release(0x10)
        assert entry.is_pte
        assert entry.translation_type == AccessType.DATA

    def test_merge_counts(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.LOAD)
        mshrs.allocate(0x10, RequestType.LOAD)
        assert mshrs.allocations == 1
        assert mshrs.merges == 1
        assert len(mshrs) == 1

    def test_merge_strengthens_to_pte(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.LOAD)
        mshrs.allocate(0x10, RequestType.PTW, is_pte=True, translation_type=AccessType.DATA)
        entry = mshrs.release(0x10)
        assert entry.is_pte
        assert entry.translation_type == AccessType.DATA

    def test_merge_data_type_dominates(self):
        # Once any requester marks the line a data PTE, the bit sticks.
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.PTW, True, AccessType.INSTRUCTION)
        mshrs.allocate(0x10, RequestType.PTW, True, AccessType.DATA)
        assert mshrs.release(0x10).translation_type == AccessType.DATA

    def test_merge_does_not_weaken(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x10, RequestType.PTW, True, AccessType.DATA)
        mshrs.allocate(0x10, RequestType.PTW, True, AccessType.INSTRUCTION)
        assert mshrs.release(0x10).translation_type == AccessType.DATA


class TestStructuralHazard:
    def test_full_file_evicts_oldest(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, RequestType.LOAD)
        mshrs.allocate(2, RequestType.LOAD)
        mshrs.allocate(3, RequestType.LOAD)
        assert mshrs.full_events == 1
        assert mshrs.lookup(1) is None
        assert mshrs.lookup(3) is not None

    def test_structural_penalty_only_when_full(self):
        mshrs = MSHRFile(2, full_penalty=5)
        assert mshrs.structural_penalty() == 0
        mshrs.allocate(1, RequestType.LOAD)
        mshrs.allocate(2, RequestType.LOAD)
        assert mshrs.structural_penalty() == 5
