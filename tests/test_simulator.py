"""Unit tests for the simulation drivers."""

import pytest

from repro.common.params import scaled_config
from repro.core.simulator import simulate, simulate_smt
from repro.workloads.server import ServerWorkload
from repro.workloads.speclike import SpecLikeWorkload


def small_server(seed=1, **kw):
    kw.setdefault("code_pages", 64)
    kw.setdefault("data_pages", 2000)
    kw.setdefault("hot_data_pages", 64)
    kw.setdefault("warm_pages", 500)
    kw.setdefault("local_pages", 32)
    return ServerWorkload(f"srv{seed}", seed, **kw)


class TestSimulate:
    def test_runs_and_reports(self):
        result = simulate(scaled_config(), small_server(), 2000, 10000)
        assert result.ipc > 0
        assert result.stats.instructions >= 10000
        assert result.get("stlb.mpki") >= 0
        assert result["ipc"] == pytest.approx(result.ipc)

    def test_deterministic(self):
        r1 = simulate(scaled_config(), small_server(), 2000, 8000)
        r2 = simulate(scaled_config(), small_server(), 2000, 8000)
        assert r1.ipc == r2.ipc
        assert r1.metrics == r2.metrics

    def test_warmup_not_measured(self):
        result = simulate(scaled_config(), small_server(), 5000, 8000)
        # Warmup instructions are excluded from the measured count.
        assert result.stats.instructions < 5000 + 8000 + 50

    def test_warmup_affects_measured_hit_rates(self):
        cold = simulate(scaled_config(), small_server(), 0, 8000)
        warm = simulate(scaled_config(), small_server(), 30000, 8000)
        # A cold-started measurement sees the compulsory STLB misses.
        assert warm.get("stlb.mpki") < cold.get("stlb.mpki")

    def test_config_label_recorded(self):
        result = simulate(scaled_config(), small_server(), 1000, 4000, config_label="lru")
        assert result.config_label == "lru"
        assert result.workload.startswith("srv")


class TestSimulateSMT:
    def mixes(self):
        return [small_server(1), small_server(2)]

    def test_runs_two_threads(self):
        result = simulate_smt(scaled_config(), self.mixes(), 2000, 12000)
        assert result.ipc > 0
        per_thread = result.stats.per_thread_instructions
        assert set(per_thread) == {0, 1}
        # Round-robin fetch keeps the threads roughly balanced.
        assert abs(per_thread[0] - per_thread[1]) < 2000

    def test_rejects_wrong_thread_count(self):
        with pytest.raises(ValueError):
            simulate_smt(scaled_config(), [small_server()], 100, 200)

    def test_smt_throughput_between_1x_and_2x(self):
        wl = small_server(1)
        single = simulate(scaled_config(), wl, 2000, 10000)
        pair = simulate_smt(scaled_config(), [small_server(1), small_server(2)], 2000, 20000)
        assert pair.ipc > single.ipc * 0.8
        assert pair.ipc < single.ipc * 2.2

    def test_smt_name_joins_workloads(self):
        result = simulate_smt(scaled_config(), self.mixes(), 1000, 6000)
        assert "+" in result.workload

    def test_different_page_policies_per_thread(self):
        a = small_server(1, large_page_percent=100)
        b = small_server(2, large_page_percent=0)
        result = simulate_smt(scaled_config(), [a, b], 2000, 12000)
        assert result.ipc > 0


class TestAdaptiveIntegration:
    def test_adaptive_counters_exported(self):
        cfg = scaled_config().with_policies(stlb="itp", l2c="xptp")
        result = simulate(cfg, small_server(), 5000, 20000)
        assert result.get("adaptive.windows_total") > 0

    def test_high_pressure_enables_xptp(self):
        cfg = scaled_config().with_policies(stlb="itp", l2c="xptp")
        wl = ServerWorkload("hot", 3)  # default: heavy STLB pressure
        result = simulate(cfg, wl, 20000, 40000)
        assert result.get("adaptive.windows_enabled") > 0.5 * result.get(
            "adaptive.windows_total"
        )

    def test_low_pressure_disables_xptp(self):
        cfg = scaled_config().with_policies(stlb="itp", l2c="xptp")
        wl = SpecLikeWorkload("cold", 3, code_pages=4, data_pages=256, hot_data_pages=64)
        result = simulate(cfg, wl, 20000, 40000)
        assert result.get("adaptive.windows_enabled") < 0.5 * result.get(
            "adaptive.windows_total"
        )
