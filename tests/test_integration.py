"""Integration tests: the paper's qualitative claims on small simulations.

These run short end-to-end simulations (tens of thousands of instructions)
and assert the *directional* findings the paper reports.
"""

import pytest

from repro.common.params import scaled_config
from repro.core.simulator import simulate, simulate_smt
from repro.workloads.server import ServerWorkload
from repro.workloads.speclike import SpecLikeWorkload

WARMUP = 40_000
MEASURE = 100_000


@pytest.fixture(scope="module")
def server_results():
    """Run the key techniques once and share across tests."""
    wl = ServerWorkload("it", seed=11)
    base = scaled_config()
    configs = {
        "lru": base,
        "itp": base.with_policies(stlb="itp"),
        "itp+xptp": base.with_policies(stlb="itp", l2c="xptp"),
        "chirp": base.with_policies(stlb="chirp"),
    }
    return {
        name: simulate(cfg, wl, WARMUP, MEASURE, config_label=name)
        for name, cfg in configs.items()
    }


class TestFinding1:
    """Large code footprints amplify translation overheads (Section 3.1)."""

    def test_server_has_instruction_stlb_misses_spec_does_not(self):
        cfg = scaled_config()
        server = simulate(cfg, ServerWorkload("s", 1), WARMUP, MEASURE)
        spec = simulate(cfg, SpecLikeWorkload("p", 1), WARMUP, MEASURE)
        assert server.get("stlb.impki") > 1.0
        assert spec.get("stlb.impki") < 0.05

    def test_server_spends_cycles_on_instruction_translation(self):
        cfg = scaled_config()
        server = simulate(cfg, ServerWorkload("s", 1), WARMUP, MEASURE)
        spec = simulate(cfg, SpecLikeWorkload("p", 1), WARMUP, MEASURE)
        server_pct = server.get("translation.instr_cycles") / server.get("cycles")
        spec_pct = spec.get("translation.instr_cycles") / spec.get("cycles")
        assert server_pct > 10 * max(spec_pct, 1e-9)


class TestFinding2:
    """Prioritising instructions in the STLB helps big-code workloads."""

    def test_itp_beats_lru_on_server(self, server_results):
        assert server_results["itp"].ipc > server_results["lru"].ipc

    def test_itp_cuts_instruction_mpki(self, server_results):
        assert (
            server_results["itp"].get("stlb.impki")
            < 0.8 * server_results["lru"].get("stlb.impki")
        )

    def test_itp_raises_data_mpki(self, server_results):
        # The deliberate trade of Figure 10.
        assert (
            server_results["itp"].get("stlb.dmpki")
            > server_results["lru"].get("stlb.dmpki")
        )

    def test_itp_neutral_on_spec(self):
        base = scaled_config()
        wl = SpecLikeWorkload("p", 2)
        lru = simulate(base, wl, WARMUP, MEASURE)
        itp = simulate(base.with_policies(stlb="itp"), wl, WARMUP, MEASURE)
        assert itp.ipc == pytest.approx(lru.ipc, rel=0.02)


class TestFinding3AndXPTP:
    """iTP increases data page-walk cache pressure; xPTP absorbs it."""

    def test_xptp_cuts_data_pte_l2c_misses(self, server_results):
        assert (
            server_results["itp+xptp"].get("l2c.dtmpki")
            < 0.75 * server_results["itp"].get("l2c.dtmpki")
        )

    def test_xptp_cuts_stlb_miss_latency(self, server_results):
        assert (
            server_results["itp+xptp"].get("stlb.avg_miss_latency")
            < server_results["itp"].get("stlb.avg_miss_latency")
        )

    def test_combination_beats_itp_alone(self, server_results):
        assert server_results["itp+xptp"].ipc > server_results["itp"].ipc

    def test_combination_beats_lru(self, server_results):
        # The headline: iTP+xPTP clearly outperforms the LRU baseline.
        assert server_results["itp+xptp"].ipc > 1.02 * server_results["lru"].ipc


class TestCHiRPBehaviour:
    def test_chirp_close_to_lru(self, server_results):
        # Section 6.1: CHiRP achieves almost the same performance as LRU.
        ratio = server_results["chirp"].ipc / server_results["lru"].ipc
        assert 0.97 < ratio < 1.06


class TestSMT:
    def test_itp_xptp_helps_under_colocation(self):
        base = scaled_config()
        pair = [ServerWorkload("a", 21), ServerWorkload("b", 22)]
        lru = simulate_smt(base, pair, WARMUP, MEASURE)
        prop = simulate_smt(
            base.with_policies(stlb="itp", l2c="xptp"), pair, WARMUP, MEASURE
        )
        assert prop.ipc > lru.ipc


class TestLargePages:
    def test_full_2mb_coverage_kills_stlb_misses(self):
        base = scaled_config()
        wl0 = ServerWorkload("a", 31, large_page_percent=0)
        wl100 = ServerWorkload("a", 31, large_page_percent=100)
        r0 = simulate(base, wl0, WARMUP, MEASURE)
        r100 = simulate(base, wl100, WARMUP, MEASURE)
        assert r100.get("stlb.mpki") < 0.3 * r0.get("stlb.mpki")
        assert r100.ipc > r0.ipc
