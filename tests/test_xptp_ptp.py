"""Unit tests for xPTP (Figure 6) and the PTP baseline."""

from repro.cache.line import CacheLine
from repro.common.types import AccessType, MemoryRequest, RequestType
from repro.replacement.ptp import PTPPolicy
from repro.replacement.xptp import XPTPPolicy


def demand():
    return MemoryRequest(address=0, req_type=RequestType.LOAD)


def fill_set(policy, ls, data_pte_ways=()):
    for way, line in enumerate(ls):
        line.valid = True
        if way in data_pte_ways:
            line.is_pte = True
            line.translation_type = AccessType.DATA
        policy.on_fill(0, way, ls, demand())


class TestXPTPVictim:
    def test_plain_lru_when_lru_not_data_pte(self):
        policy = XPTPPolicy(1, 4, k=2)
        ls = [CacheLine() for _ in range(4)]
        fill_set(policy, ls)
        # Fill order 0,1,2,3 -> LRU is way 0.
        assert policy.victim(0, ls, demand()) == 0

    def test_alt_victim_skips_data_pte_at_lru(self):
        policy = XPTPPolicy(1, 4, k=2)
        ls = [CacheLine() for _ in range(4)]
        fill_set(policy, ls, data_pte_ways={0})
        # LRU (way 0) holds a data PTE; alternative is way 1 at height 1 < K.
        assert policy.victim(0, ls, demand()) == 1
        assert policy.protected_evictions_avoided == 1

    def test_step_c_reverts_to_lru_when_alt_too_high(self):
        # Ways 0,1,2 are data PTEs; the first non-PTE (way 3) sits at height
        # 3 > K=2, so the plain LRU victim is evicted despite being a PTE.
        policy = XPTPPolicy(1, 4, k=2)
        ls = [CacheLine() for _ in range(4)]
        fill_set(policy, ls, data_pte_ways={0, 1, 2})
        assert policy.victim(0, ls, demand()) == 0
        assert policy.protected_evictions_avoided == 0

    def test_alternative_at_exactly_k_is_taken(self):
        # Boundary: ways 0,1 are data PTEs, so the first non-PTE (way 2)
        # sits at height exactly K=2.  "More than K positions above" is the
        # revert condition (Section 4.3 step c), so K itself still protects.
        policy = XPTPPolicy(1, 4, k=2)
        ls = [CacheLine() for _ in range(4)]
        fill_set(policy, ls, data_pte_ways={0, 1})
        assert policy.victim(0, ls, demand()) == 2
        assert policy.protected_evictions_avoided == 1

    def test_reset_stats_clears_counter(self):
        policy = XPTPPolicy(1, 4, k=2)
        ls = [CacheLine() for _ in range(4)]
        fill_set(policy, ls, data_pte_ways={0})
        policy.victim(0, ls, demand())
        assert policy.protected_evictions_avoided == 1
        policy.reset_stats()
        assert policy.protected_evictions_avoided == 0

    def test_all_data_pte_falls_back_to_lru(self):
        policy = XPTPPolicy(1, 4, k=4)
        ls = [CacheLine() for _ in range(4)]
        fill_set(policy, ls, data_pte_ways={0, 1, 2, 3})
        assert policy.victim(0, ls, demand()) == 0

    def test_instruction_pte_not_protected(self):
        policy = XPTPPolicy(1, 4, k=4)
        ls = [CacheLine() for _ in range(4)]
        fill_set(policy, ls)
        ls[0].is_pte = True
        ls[0].translation_type = AccessType.INSTRUCTION
        assert policy.victim(0, ls, demand()) == 0

    def test_disabled_degenerates_to_lru(self):
        # Section 4.3.1: with steps a-d omitted, xPTP *is* LRU.
        policy = XPTPPolicy(1, 4, k=4)
        ls = [CacheLine() for _ in range(4)]
        fill_set(policy, ls, data_pte_ways={0})
        policy.enabled = False
        assert policy.victim(0, ls, demand()) == 0

    def test_k_validation(self):
        import pytest

        with pytest.raises(ValueError):
            XPTPPolicy(1, 4, k=0)


class TestPTP:
    def test_protects_pte_within_budget(self):
        policy = PTPPolicy(1, 8)  # reserved_ways = 3
        ls = [CacheLine() for _ in range(8)]
        for way, line in enumerate(ls):
            line.valid = True
            if way < 2:
                line.is_pte = True
                line.translation_type = AccessType.DATA
            policy.on_fill(0, way, ls, demand())
        # LRU is way 0 (a PTE) but only 2 PTEs <= budget 3: skip to way 2.
        assert policy.victim(0, ls, demand()) == 2

    def test_over_budget_reverts_to_lru(self):
        policy = PTPPolicy(1, 8)
        ls = [CacheLine() for _ in range(8)]
        for way, line in enumerate(ls):
            line.valid = True
            if way < 5:  # 5 PTEs > budget 3
                line.is_pte = True
            policy.on_fill(0, way, ls, demand())
        assert policy.victim(0, ls, demand()) == 0

    def test_protects_instruction_pte_too(self):
        # PTP is type-oblivious: instruction PTEs also protected.
        policy = PTPPolicy(1, 8)
        ls = [CacheLine() for _ in range(8)]
        for way, line in enumerate(ls):
            line.valid = True
            policy.on_fill(0, way, ls, demand())
        ls[0].is_pte = True
        ls[0].translation_type = AccessType.INSTRUCTION
        assert policy.victim(0, ls, demand()) == 1

    def test_all_pte_falls_back_to_lru(self):
        policy = PTPPolicy(1, 4)  # reserved 1
        ls = [CacheLine() for _ in range(4)]
        for way, line in enumerate(ls):
            line.valid = True
            line.is_pte = True
            policy.on_fill(0, way, ls, demand())
        assert policy.victim(0, ls, demand()) == 0
