"""Unit tests for the page structure caches and the page-table walker."""

from repro.common.params import PSCConfig
from repro.common.stats import SimStats
from repro.common.types import AccessType, PageSize, RequestType
from repro.ptw.page_table import PageTable
from repro.ptw.psc import PageStructureCache, SplitPSC
from repro.ptw.walker import PageTableWalker

from .helpers import StubMemory


class TestPageStructureCache:
    def test_miss_then_hit(self):
        psc = PageStructureCache("P", entries=4, associativity=2)
        assert psc.lookup(10) is None
        psc.insert(10, 99)
        assert psc.lookup(10) == 99
        assert psc.hits == 1
        assert psc.misses == 1

    def test_lru_eviction_within_set(self):
        psc = PageStructureCache("P", entries=2, associativity=2)  # 1 set
        psc.insert(0, 1)
        psc.insert(1, 2)
        psc.lookup(0)          # refresh key 0
        psc.insert(2, 3)       # evicts key 1
        assert psc.lookup(1) is None
        assert psc.lookup(0) == 1

    def test_update_existing_key(self):
        psc = PageStructureCache("P", entries=4, associativity=2)
        psc.insert(10, 1)
        psc.insert(10, 2)
        assert psc.lookup(10) == 2
        assert len(psc) == 1

    def test_invalidate_all(self):
        psc = PageStructureCache("P", entries=4, associativity=2)
        psc.insert(1, 1)
        psc.invalidate_all()
        assert psc.lookup(1) is None


class TestSplitPSC:
    def test_deepest_hit_prefers_pscl2(self):
        psc = SplitPSC(PSCConfig())
        vpn = 0x12345
        psc.fill(vpn, 2, 100)
        psc.fill(vpn, 3, 200)
        assert psc.deepest_hit(vpn) == (2, 100)

    def test_falls_back_to_shallower(self):
        psc = SplitPSC(PSCConfig())
        vpn = 0x12345
        psc.fill(vpn, 4, 300)
        assert psc.deepest_hit(vpn) == (4, 300)

    def test_full_miss(self):
        psc = SplitPSC(PSCConfig())
        assert psc.deepest_hit(0x999) is None

    def test_key_prefixes(self):
        assert SplitPSC.key_for(0x1FF, 2) == 0x1FF >> 9
        assert SplitPSC.key_for(1 << 36, 5) == 1


def make_walker():
    stats = SimStats()
    memory = StubMemory(latency=50)
    pt = PageTable()
    walker = PageTableWalker(pt, PSCConfig(), memory, stats)
    return walker, memory, stats


class TestWalker:
    def test_cold_4k_walk_reads_five_levels(self):
        walker, memory, _ = make_walker()
        result = walker.walk(0x1234_5000, AccessType.DATA)
        assert result.memory_references == 5
        assert result.page_size is PageSize.SIZE_4K
        assert result.latency == walker.psc_latency + 5 * 50

    def test_warm_walk_uses_pscl2(self):
        walker, memory, _ = make_walker()
        walker.walk(0x0000, AccessType.DATA)
        result = walker.walk(0x1000, AccessType.DATA)  # same region
        assert result.memory_references == 1           # leaf only

    def test_requests_are_typed_pte(self):
        walker, memory, _ = make_walker()
        walker.walk(0x5000, AccessType.INSTRUCTION)
        assert all(r.req_type == RequestType.PTW for r in memory.requests)
        assert all(r.is_pte for r in memory.requests)
        assert all(r.translation_type == AccessType.INSTRUCTION for r in memory.requests)

    def test_walk_counters(self):
        walker, _, stats = make_walker()
        walker.walk(0x5000, AccessType.DATA)
        walker.walk(0x6000, AccessType.INSTRUCTION)
        assert stats.counters["ptw.data_walks"] == 1
        assert stats.counters["ptw.instr_walks"] == 1
        assert stats.counters["ptw.psc_misses"] == 1
        assert stats.counters["ptw.pscl2_hits"] == 1

    def test_2m_walk_four_levels_cold(self):
        stats = SimStats()
        memory = StubMemory(latency=50)
        pt = PageTable(size_policy=lambda vaddr: PageSize.SIZE_2M)
        walker = PageTableWalker(pt, PSCConfig(), memory, stats)
        result = walker.walk(0x20_0000, AccessType.DATA)
        assert result.memory_references == 4
        assert result.page_size is PageSize.SIZE_2M

    def test_2m_warm_walk_resumes_at_pscl3(self):
        stats = SimStats()
        memory = StubMemory(latency=50)
        pt = PageTable(size_policy=lambda vaddr: PageSize.SIZE_2M)
        walker = PageTableWalker(pt, PSCConfig(), memory, stats)
        walker.walk(0x20_0000, AccessType.DATA)
        # A different 2 MB page in the same 1 GB region: PSCL3 knows the L2
        # table, so only the L2 (leaf) entry is read.
        result = walker.walk(0x40_0000, AccessType.DATA)
        assert result.memory_references == 1

    def test_thread_id_propagates(self):
        walker, memory, _ = make_walker()
        walker.walk(0x5000, AccessType.DATA, thread_id=1)
        assert all(r.thread_id == 1 for r in memory.requests)
