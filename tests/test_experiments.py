"""Unit tests for the experiment harness (runner, reporting)."""

import pytest

from repro.common.stats import SimStats
from repro.core.simulator import SimulationResult
from repro.experiments.reporting import FigureResult, format_figure, format_table
from repro.experiments.runner import (
    Comparison,
    POLICY_MATRIX,
    config_for,
    geomean,
)


def result_with_ipc(ipc, **metrics):
    stats = SimStats()
    stats.instructions = 1000
    stats.cycles = 1000 / ipc
    res = SimulationResult("w", "t", stats)
    res.metrics.update(metrics)
    return res


class TestPolicyMatrix:
    def test_table2_contents(self):
        assert list(POLICY_MATRIX) == [
            "lru", "tdrrip", "ptp", "chirp", "chirp+tdrrip", "chirp+ptp",
            "itp", "itp+tdrrip", "itp+ptp", "itp+xptp",
        ]

    def test_config_for_itp_xptp(self):
        cfg = config_for("itp+xptp")
        assert cfg.stlb_policy == "itp"
        assert cfg.l2c_policy == "xptp"
        assert cfg.llc_policy == "lru"

    def test_config_for_baseline(self):
        cfg = config_for("lru")
        assert cfg.stlb_policy == "lru"
        assert cfg.l2c_policy == "lru"

    def test_config_for_respects_base(self):
        from repro.common.params import scaled_config

        base = scaled_config().with_policies(llc="ship")
        cfg = config_for("itp", base)
        assert cfg.llc_policy == "ship"
        assert cfg.stlb_policy == "itp"

    def test_unknown_technique(self):
        with pytest.raises(ValueError, match="unknown technique"):
            config_for("magic")


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_single(self):
        assert geomean([1.1]) == pytest.approx(1.1)


class TestComparison:
    def make(self):
        comparison = Comparison(baseline="lru")
        comparison.results["lru"] = {
            "w0": result_with_ipc(1.0, **{"stlb.mpki": 2.0}),
            "w1": result_with_ipc(2.0, **{"stlb.mpki": 4.0}),
        }
        comparison.results["itp"] = {
            "w0": result_with_ipc(1.1, **{"stlb.mpki": 1.0}),
            "w1": result_with_ipc(2.2, **{"stlb.mpki": 3.0}),
        }
        return comparison

    def test_speedups(self):
        comparison = self.make()
        assert comparison.speedups("itp") == pytest.approx([1.1, 1.1])

    def test_geomean_improvement(self):
        comparison = self.make()
        assert comparison.geomean_improvement_percent("itp") == pytest.approx(10.0)
        assert comparison.geomean_improvement_percent("lru") == pytest.approx(0.0)

    def test_mean_metric(self):
        comparison = self.make()
        assert comparison.mean_metric("lru", "stlb.mpki") == pytest.approx(3.0)


class TestReporting:
    def test_figure_result_row_validation(self):
        fig = FigureResult("F", "d", headers=["a", "b"])
        fig.add_row(1, 2)
        with pytest.raises(ValueError):
            fig.add_row(1)

    def test_column_extraction(self):
        fig = FigureResult("F", "d", headers=["a", "b"])
        fig.add_row(1, 2)
        fig.add_row(3, 4)
        assert fig.column("b") == [2, 4]
        assert fig.as_dicts()[0] == {"a": 1, "b": 2}

    def test_format_table_aligned(self):
        text = format_table(["name", "v"], [["x", 1.23456], ["long", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text
        assert len(lines) == 4

    def test_format_figure_includes_notes(self):
        fig = FigureResult("Figure X", "demo", headers=["a"], notes=["hello"])
        fig.add_row(1)
        text = format_figure(fig)
        assert "Figure X" in text
        assert "note: hello" in text


class TestExport:
    def make_figure(self):
        fig = FigureResult("Figure 2", "demo", headers=["a", "b"])
        fig.add_row("x", 1.5)
        fig.add_row("y", 2.5)
        return fig

    def test_csv_roundtrip(self, tmp_path):
        from repro.experiments.export import read_csv, write_csv

        path = write_csv(self.make_figure(), tmp_path)
        assert path.name == "figure_2.csv"
        loaded = read_csv(path)
        assert loaded.headers == ["a", "b"]
        assert loaded.rows == [["x", "1.5"], ["y", "2.5"]]

    def test_json_export(self, tmp_path):
        import json

        from repro.experiments.export import write_json

        path = write_json([self.make_figure()], tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload[0]["figure"] == "Figure 2"
        assert payload[0]["rows"] == [["x", 1.5], ["y", 2.5]]

    def test_cli_csv_dir(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import __main__ as cli

        monkeypatch.setitem(cli.RUNNERS, "figtest", self.make_figure)
        assert cli.main(["--csv-dir", str(tmp_path), "figtest"]) == 0
        assert (tmp_path / "figure_2.csv").exists()

    def test_cli_csv_dir_missing_arg(self, capsys):
        from repro.experiments import __main__ as cli

        assert cli.main(["--csv-dir"]) == 2


class TestComparisonEdgeCases:
    def test_zero_ipc_baseline_skipped(self):
        comparison = Comparison(baseline="lru")
        zero = result_with_ipc(1.0)
        zero.stats.cycles = 0.0
        zero.stats.instructions = 0
        comparison.results["lru"] = {"w0": zero, "w1": result_with_ipc(2.0)}
        comparison.results["itp"] = {"w0": result_with_ipc(1.0), "w1": result_with_ipc(2.2)}
        # The zero-IPC baseline workload is excluded, not a crash.
        assert comparison.speedups("itp") == [pytest.approx(1.1)]

    def test_mean_metric_empty(self):
        comparison = Comparison(baseline="lru")
        comparison.results["lru"] = {}
        assert comparison.mean_metric("lru", "x") == 0.0
