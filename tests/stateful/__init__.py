"""Protocol-level stateful property tests (Hypothesis RuleBasedStateMachines).

Four machines drive the simulator's stateful protocols against independent
pure-Python models derived from the paper text, with the ``REPRO_CHECK``
shadow implementations (``CheckedRecencyStack``, ``CheckedMSHRFile``)
running as live oracles inside every example:

* ``test_mshr_machine`` — the MSHR file protocol (allocate/merge/release/
  structural retirement/reset_stats) against a pure-dict model;
* ``test_cache_machine`` — a cache set + recency stack + replacement policy
  (LRU and xPTP) against a reference residency/victim model;
* ``test_tlb_machine`` — the TLB with LRU/iTP/CHiRP across hit/miss/
  invalidate sequences (insert-depth and saturation invariants);
* ``test_warmup_machine`` — the warmup/measurement boundary: ``reset_stats``
  clears every counter while preserving microarchitectural state.

Intensity tiers (``dev``/``ci``/``deep``) live in :mod:`.profiles`; select
one with ``REPRO_HYPOTHESIS_PROFILE``.  See ``docs/testing.md``.
"""
