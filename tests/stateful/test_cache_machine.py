"""Stateful protocol test: cache set + recency stack + replacement policy.

Drives one :class:`SetAssociativeCache` (LRU and xPTP variants) with
interleaved demand accesses, absorbed writebacks and ``reset_stats``
against a reference model: per-set MRU→LRU lists of (tag, dirty, Type-bit)
records plus the paper's victim rules.  After every rule the machine
asserts:

* residency, hit/miss outcome and demand latency match the model;
* the policy's recency-stack order is *identical* to the model order
  (the stacks themselves run as ``CheckedRecencyStack`` differential
  oracles, so both the O(1) structure and the policy's use of it are
  verified);
* the xPTP Type bit written back from the MSHR at fill time matches what
  the request carried, and ``protected_evictions_avoided`` counts exactly
  the step-(d) alternative-victim evictions — including the step-(c)
  boundary (height == K taken, height == K+1 falls back to LRU);
* eviction/writeback counters match, the MSHR file drains after every
  access, and ``reset_stats`` clears counters without touching state.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.cache import SetAssociativeCache
from repro.common.params import CacheConfig
from repro.common.stats import LevelStats
from repro.common.types import AccessType, MemoryRequest, RequestType
from repro.replacement.lru import LRUPolicy
from repro.replacement.xptp import XPTPPolicy

from ..helpers import StubMemory
from . import profiles  # noqa: F401  (registers and loads the settings profile)
from .models import strengthen, xptp_victim
from .oracles import repro_check_enabled

SETS = 4
ASSOC = 4
XPTP_K = 2
MISS_LATENCY = 100

ACCESS_KINDS = st.sampled_from(
    [
        (RequestType.LOAD, False, None),
        (RequestType.STORE, False, None),
        (RequestType.IFETCH, False, None),
        (RequestType.PTW, True, AccessType.INSTRUCTION),
        (RequestType.PTW, True, AccessType.DATA),
    ]
)

SET_INDICES = st.integers(min_value=0, max_value=SETS - 1)
TAGS = st.integers(min_value=0, max_value=5)

WB_BITS = st.sampled_from(
    [(False, None), (True, AccessType.INSTRUCTION), (True, AccessType.DATA)]
)


class _Line:
    """Model line: tag plus the state the protocol invariants observe."""

    __slots__ = ("tag", "dirty", "is_pte", "translation_type")

    def __init__(self, tag, dirty, is_pte, translation_type):
        self.tag = tag
        self.dirty = dirty
        self.is_pte = is_pte
        self.translation_type = translation_type

    @property
    def is_data_pte(self):
        return self.is_pte and self.translation_type is AccessType.DATA


class CacheProtocolMachine(RuleBasedStateMachine):
    """Shared machinery; concrete subclasses pick the policy."""

    def _make_policy(self):
        raise NotImplementedError

    def _victim_index(self, model_set):
        """Reference victim choice; returns (MRU→LRU index, protected)."""
        raise NotImplementedError

    def __init__(self):
        super().__init__()
        config = CacheConfig(
            "MACH", size_bytes=SETS * ASSOC * 64, associativity=ASSOC,
            latency=5, mshr_entries=4,
        )
        with repro_check_enabled():
            # Checked recency stacks + shadow-checked MSHR file: the REPRO_CHECK
            # oracles verify every stack/MSHR operation inside the machine.
            self.cache = SetAssociativeCache(
                config, self._make_policy(), StubMemory(MISS_LATENCY),
                LevelStats("MACH"),
            )
        self.model = [[] for _ in range(SETS)]  # per set, MRU -> LRU
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.protected = 0

    # ------------------------------------------------------------------ #
    # Model transitions
    # ------------------------------------------------------------------ #

    def _model_fill(self, model_set, line):
        """Miss path: evict per policy if full, insert at MRU."""
        if len(model_set) >= ASSOC:
            index, protected = self._victim_index(model_set)
            victim = model_set.pop(index)
            self.evictions += 1
            self.protected += protected
            if victim.dirty:
                self.writebacks += 1
        model_set.insert(0, line)

    def _find(self, model_set, tag):
        for index, line in enumerate(model_set):
            if line.tag == tag:
                return index
        return None

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #

    @rule(set_index=SET_INDICES, tag=TAGS, kind=ACCESS_KINDS)
    def access(self, set_index, tag, kind):
        req_type, is_pte, translation_type = kind
        address = ((tag * SETS) + set_index) << 6
        req = MemoryRequest(
            address=address, req_type=req_type,
            is_pte=is_pte, translation_type=translation_type,
        )
        model_set = self.model[set_index]
        index = self._find(model_set, tag)
        if index is not None:
            self.hits += 1
            line = model_set.pop(index)
            model_set.insert(0, line)  # hit promotion is plain LRU here
            if req_type is RequestType.STORE:
                line.dirty = True
            line.is_pte, line.translation_type = strengthen(
                (line.is_pte, line.translation_type), is_pte, translation_type
            )
            expected_latency = 5
        else:
            self.misses += 1
            self._model_fill(
                model_set,
                _Line(tag, req_type is RequestType.STORE, is_pte,
                      translation_type if is_pte else None),
            )
            expected_latency = 5 + MISS_LATENCY
        latency = self.cache.access(req)
        assert latency == expected_latency
        assert self.cache.mshrs.outstanding() == 0, "MSHR entry leaked past access"

    @rule(set_index=SET_INDICES, tag=TAGS, bits=WB_BITS)
    def absorb_writeback(self, set_index, tag, bits):
        """A dirty line arriving from the level above (write-allocate)."""
        is_pte, translation_type = bits
        address = ((tag * SETS) + set_index) << 6
        req = MemoryRequest(
            address=address, req_type=RequestType.WRITEBACK,
            is_pte=is_pte, translation_type=translation_type,
        )
        model_set = self.model[set_index]
        index = self._find(model_set, tag)
        if index is not None:
            # Absorbed in place: dirty, Type strengthened, *no* promotion.
            line = model_set[index]
            line.dirty = True
            line.is_pte, line.translation_type = strengthen(
                (line.is_pte, line.translation_type), is_pte, translation_type
            )
        else:
            self._model_fill(model_set, _Line(tag, True, is_pte, translation_type))
        assert self.cache.access(req) == 0

    @rule()
    def reset_stats(self):
        snapshot = [
            [(ln.tag, ln.dirty, ln.is_pte, ln.translation_type) for ln in s]
            for s in self.model
        ]
        self.cache.reset_stats()
        self.protected = 0
        # Counters cleared...
        assert self.cache.mshrs.allocations == 0
        assert self.cache.mshrs.merges == 0
        assert self.cache.mshrs.full_events == 0
        assert self.cache.mshrs.retirements == 0
        # ...state untouched: the model (already verified against the cache)
        # still describes it exactly.
        self.check_contents_match_model()
        assert snapshot == [
            [(ln.tag, ln.dirty, ln.is_pte, ln.translation_type) for ln in s]
            for s in self.model
        ]

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def check_contents_match_model(self):
        cache = self.cache
        assert cache.occupancy() == sum(len(s) for s in self.model)
        for set_index in range(SETS):
            model_set = self.model[set_index]
            tag_map = cache._tag_maps[set_index]
            assert set(tag_map) == {line.tag for line in model_set}
            lines = cache.sets[set_index]
            for model_line in model_set:
                line = lines[tag_map[model_line.tag]]
                assert line.valid
                assert line.dirty == model_line.dirty
                assert line.is_pte == model_line.is_pte
                assert line.translation_type == model_line.translation_type

    @invariant()
    def check_recency_order_matches_model(self):
        for set_index in range(SETS):
            tag_map = self.cache._tag_maps[set_index]
            way_to_tag = {way: tag for tag, way in tag_map.items()}
            stack_tags = [
                way_to_tag[way]
                for way in self.cache.policy.stacks[set_index].order()
                if way in way_to_tag
            ]
            assert stack_tags == [line.tag for line in self.model[set_index]]

    @invariant()
    def check_stats_match_model(self):
        stats = self.cache.stats
        assert stats.hits == self.hits
        assert stats.misses == self.misses
        assert stats.evictions == self.evictions
        assert stats.writebacks == self.writebacks


class LRUCacheMachine(CacheProtocolMachine):
    def _make_policy(self):
        return LRUPolicy(SETS, ASSOC)

    def _victim_index(self, model_set):
        return len(model_set) - 1, False


class XPTPCacheMachine(CacheProtocolMachine):
    def _make_policy(self):
        return XPTPPolicy(SETS, ASSOC, k=XPTP_K)

    def _victim_index(self, model_set):
        return xptp_victim([line.is_data_pte for line in model_set], XPTP_K)

    @invariant()
    def check_protected_eviction_count(self):
        assert self.cache.policy.protected_evictions_avoided == self.protected


TestLRUCacheProtocol = LRUCacheMachine.TestCase
TestXPTPCacheProtocol = XPTPCacheMachine.TestCase
