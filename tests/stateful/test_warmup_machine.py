"""Stateful protocol test: the warmup/measurement boundary on a full system.

The paper's methodology simulates a warmup window and then calls
``reset_stats`` before the measurement window, so the whole result set rests
on one contract: the boundary clears **every** statistic and preserves
**every** piece of microarchitectural state.  The machine drives a complete
scaled ``System`` (iTP STLB, xPTP L2C, adaptive controller, PSCs, row-buffer
DRAM) with a server-workload instruction stream, and at arbitrary points
drops a boundary:

* state snapshot before == state snapshot after — cache/TLB occupancies and
  Type bits, sampled recency orders, DRAM open rows, PSC contents;
* afterwards every counter in the stats schema reads zero — ``SimStats``
  scalars and dicts, every ``LevelStats`` slot, MSHR event counters on every
  cache and the STLB, xPTP's protected-eviction count, PSC and DRAM
  hit/miss diagnostics, and the adaptive controller's window counters.

``REPRO_CHECK`` stays set for the machine's lifetime (not just during
construction) because ``System.reset_stats`` consults it at call time for
the leaked-MSHR-entry quiescence check — so every boundary also asserts
MSHR quiescence, including entries parked in the retirement buffer.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.common.params import scaled_config
from repro.core.cpu import Core
from repro.core.system import System
from repro.workloads.server import ServerWorkload

from . import profiles  # noqa: F401  (registers and loads the settings profile)
from .oracles import enable_repro_check, restore_repro_check

#: Small but complete machine: every structure exists, nothing is big.
SCALE = 16


def _small_workload():
    return ServerWorkload(
        "boundary", seed=7,
        code_pages=8, data_pages=64, hot_data_pages=8,
        warm_pages=16, local_pages=4,
    )


class WarmupBoundaryMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self._repro_token = enable_repro_check()
        workload = _small_workload()
        config = scaled_config(SCALE).with_policies(stlb="itp", l2c="xptp")
        self.system = System(config, size_policy=workload.size_policy)
        self.core = Core(self.system)
        self._records = workload.record_stream()
        self.executed = 0

    def teardown(self):
        restore_repro_check(self._repro_token)

    # ------------------------------------------------------------------ #
    # State snapshot (everything reset_stats must NOT touch)
    # ------------------------------------------------------------------ #

    def _snapshot_state(self):
        system = self.system
        caches = {}
        for name, cache in system.topology.caches.items():
            caches[name] = (
                cache.occupancy(),
                cache.data_pte_blocks(),
                dict(cache._tag_maps[0]),
                tuple(cache.policy.stacks[0].order()),
                sorted(cache.mshrs._entries),
                sorted(cache.mshrs._retired),
            )
        tlbs = {}
        for name, tlb in system.topology.tlbs.items():
            tlbs[name] = (
                tlb.occupancy(),
                tlb.instruction_entries(),
                dict(tlb._key_maps[0]),
                tuple(tlb.policy.stacks[0].order()),
            )
        pscs = {
            level: sorted(
                key for s in cache._sets for key in s
            )
            for level, cache in system.walker.psc.caches.items()
        }
        return (
            caches,
            tlbs,
            pscs,
            tuple(system.dram._open_rows),
            system.mmu.stlb_miss_events,
            system.xptp_policy.enabled if system.xptp_policy else None,
        )

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #

    @rule(n=st.integers(min_value=1, max_value=40))
    def run(self, n):
        """Execute up to ``n`` fetch-group records through the full system."""
        stats = self.system.stats
        for _ in range(n):
            record = next(self._records, None)
            if record is None:
                self._records = _small_workload().record_stream()
                record = next(self._records)
            stats.cycles += self.core.execute(record)
            self.executed += 1

    @precondition(lambda self: self.executed > 0)
    @rule()
    def boundary(self):
        """Drop a warmup/measurement boundary and check the whole contract."""
        system = self.system
        before = self._snapshot_state()
        system.reset_stats()  # REPRO_CHECK is on: MSHR quiescence is checked
        assert self._snapshot_state() == before, "reset_stats touched state"

        # --- SimStats ------------------------------------------------- #
        stats = system.stats
        assert stats.instructions == 0
        assert stats.cycles == 0.0
        assert stats.front_stall_cycles == 0
        assert stats.counters == {}
        assert stats.per_thread_instructions == {}
        for level in stats.levels.values():
            assert level.accesses == 0
            assert level.hits == 0
            assert level.misses == 0
            assert level.miss_latency_sum == 0
            assert all(v == 0 for v in level.cat_accesses.values())
            assert all(v == 0 for v in level.cat_misses.values())
            assert level.evictions == 0
            assert level.writebacks == 0
            assert level.prefetch_fills == 0
            assert level.prefetch_hits == 0
            assert level.prefetch_requests == 0

        # --- Structure-resident counters ------------------------------ #
        for name, cache in system.topology.caches.items():
            mshrs = cache.mshrs
            for counter in ("allocations", "merges", "full_events", "retirements"):
                assert getattr(mshrs, counter) == 0, f"{name}.mshr {counter} leaked"
        mmu_mshrs = system.mmu.stlb_mshrs
        assert (mmu_mshrs.allocations, mmu_mshrs.merges,
                mmu_mshrs.full_events, mmu_mshrs.retirements) == (0, 0, 0, 0)
        assert system.xptp_policy.protected_evictions_avoided == 0
        for level, psc in system.walker.psc.caches.items():
            assert (psc.hits, psc.misses) == (0, 0), f"PSCL{level} leaked"
        assert (system.dram.row_hits, system.dram.row_misses) == (0, 0)
        adaptive = system.adaptive
        assert (adaptive.switches, adaptive.windows_enabled,
                adaptive.windows_total) == (0, 0, 0)


TestWarmupBoundary = WarmupBoundaryMachine.TestCase
