"""Pure-Python reference models for the stateful machines.

Everything here is written from the *paper text* (and the module
docstrings quoting it), deliberately not from the implementation: simple
lists and dicts, O(associativity) everywhere.  The machines replay each
operation on both the hardware structure and these models and assert
identical observable behaviour, so a divergence always points at whichever
side misreads the spec.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.types import AccessType

Bits = Tuple[bool, Optional[AccessType]]


def strengthen(bits: Bits, is_pte: bool, translation_type: Optional[AccessType]) -> Bits:
    """The Type-bit merge rule: once PTE always PTE; a DATA mark dominates;
    otherwise the first recorded type wins."""
    old_pte, old_type = bits
    if not is_pte:
        return old_pte, old_type
    if translation_type is AccessType.DATA or old_type is AccessType.DATA:
        return True, AccessType.DATA
    return True, old_type if old_type is not None else translation_type


def xptp_victim(is_data_pte: List[bool], k: int) -> Tuple[int, bool]:
    """xPTP victim selection (Figure 6 steps a-d) over an MRU→LRU set view.

    ``is_data_pte[i]`` describes the block at stack position ``i`` (0 = MRU).
    Returns ``(victim_index, protected)`` where ``protected`` is True iff an
    alternative victim was chosen to protect a data-PTE LRU block — the
    event ``XPTPPolicy.protected_evictions_avoided`` counts.  The boundary:
    an alternative exactly ``k`` positions above LRU is still taken; one
    *more than* ``k`` above falls back to the plain LRU victim (step c).
    """
    lru = len(is_data_pte) - 1
    if not is_data_pte[lru]:
        return lru, False
    for height in range(len(is_data_pte)):
        index = lru - height
        if not is_data_pte[index]:
            if height > k:
                return lru, False
            return index, True
    return lru, False


def place_at_depth(order: List[int], item: int, depth: int) -> None:
    """Insert/move ``item`` to ``depth`` positions below MRU (clamped)."""
    if item in order:
        order.remove(item)
    order.insert(max(0, min(depth, len(order))), item)


def place_above_lru(order: List[int], item: int, height: int) -> None:
    """Insert/move ``item`` to ``height`` positions above the LRU end (clamped)."""
    if item in order:
        order.remove(item)
    index = len(order) - max(0, min(height, len(order)))
    order.insert(index, item)
