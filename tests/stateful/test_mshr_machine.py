"""Stateful protocol test: the MSHR file against a pure-dict model.

The machine interleaves allocate (fresh, merge and structural-hazard
paths), release, lookup and ``reset_stats`` and checks, after every rule:

* **Type-bit monotonicity** — bits recorded at allocation only ever
  strengthen (merge rule: PTE sticks, DATA dominates) and come back intact
  at release, even when the entry was structurally retired in between
  (the synapse32 bug catalog's merge-on-inflight / fill-evict race class);
* **capacity** — live entries never exceed ``num_entries`` and everything
  outstanding (live + retired) is eventually releasable;
* **no leak-on-reset** — ``reset_stats`` zeroes the event counters and
  nothing else: entries, Type bits and the retirement buffer survive.

The implementation under test is :class:`CheckedMSHRFile`, so the shadow
oracle verifies every operation from the inside while the dict model
verifies it from the outside; ``verify_shadow_sync`` pins the shadow's
key set to the outstanding key set after every rule (the O(entries)
stale-shadow sweep this replaced is exactly what used to hide the
structural-retirement Type-bit drop).
"""

from collections import OrderedDict

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.mshr import CheckedMSHRFile
from repro.common.types import AccessType, RequestType

from . import profiles  # noqa: F401  (registers and loads the settings profile)
from .models import strengthen

CAPACITY = 3

#: (req_type, is_pte, translation_type) shapes the simulator actually issues.
REQUEST_KINDS = st.sampled_from(
    [
        (RequestType.LOAD, False, None),
        (RequestType.STORE, False, None),
        (RequestType.IFETCH, False, None),
        (RequestType.PTW, True, AccessType.INSTRUCTION),
        (RequestType.PTW, True, AccessType.DATA),
        # Writeback-carried bits can be "PTE, type unknown".
        (RequestType.WRITEBACK, True, None),
    ]
)

BLOCKS = st.integers(min_value=0, max_value=7)


class MSHRProtocolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.file = CheckedMSHRFile(CAPACITY)
        #: block -> (is_pte, translation_type), insertion-ordered like the file.
        self.live = OrderedDict()
        self.retired = {}
        self.counts = {"allocations": 0, "merges": 0, "full_events": 0, "retirements": 0}

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #

    @rule(block=BLOCKS, kind=REQUEST_KINDS)
    def allocate(self, block, kind):
        req_type, is_pte, translation_type = kind
        if block in self.live:
            self.counts["merges"] += 1
            self.live[block] = strengthen(self.live[block], is_pte, translation_type)
        else:
            if len(self.live) >= CAPACITY:
                self.counts["full_events"] += 1
                self.counts["retirements"] += 1
                oldest, bits = next(iter(self.live.items()))
                del self.live[oldest]
                self.retired[oldest] = bits
            bits = (is_pte, translation_type)
            if block in self.retired:
                # Re-allocation of a retired block folds its bits back in.
                bits = strengthen(bits, *self.retired.pop(block))
            self.live[block] = bits
            self.counts["allocations"] += 1
        entry = self.file.allocate(block, req_type, is_pte, translation_type)
        assert (entry.is_pte, entry.translation_type) == self.live[block]

    @rule(block=BLOCKS)
    def release(self, block):
        if block in self.live:
            expected = self.live.pop(block)
        elif block in self.retired:
            expected = self.retired.pop(block)
        else:
            expected = None
        entry = self.file.release(block)
        if expected is None:
            assert entry is None
        else:
            assert entry is not None, f"release({block}) dropped an outstanding entry"
            assert (entry.is_pte, entry.translation_type) == expected

    @rule(block=BLOCKS)
    def lookup(self, block):
        entry = self.file.lookup(block)
        if block in self.live:
            assert entry is not None
            assert (entry.is_pte, entry.translation_type) == self.live[block]
        else:
            # Retired entries are no longer live: lookups must miss them.
            assert entry is None

    @rule()
    def reset_stats(self):
        before = (len(self.file), self.file.outstanding())
        self.file.reset_stats()
        for name in self.counts:
            self.counts[name] = 0
        # Counters clear; state (live entries, retired buffer, bits) survives.
        assert (len(self.file), self.file.outstanding()) == before
        for block, bits in self.live.items():
            entry = self.file.lookup(block)
            assert entry is not None
            assert (entry.is_pte, entry.translation_type) == bits

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def capacity_holds(self):
        assert len(self.file) == len(self.live) <= CAPACITY

    @invariant()
    def outstanding_matches_model(self):
        assert self.file.outstanding() == len(self.live) + len(self.retired)

    @invariant()
    def shadow_is_synchronized(self):
        self.file.verify_shadow_sync()

    @invariant()
    def counters_match_model(self):
        actual = {
            "allocations": self.file.allocations,
            "merges": self.file.merges,
            "full_events": self.file.full_events,
            "retirements": self.file.retirements,
        }
        assert actual == self.counts

    @invariant()
    def penalty_iff_full(self):
        expected = self.file.full_penalty if len(self.live) >= CAPACITY else 0
        assert self.file.structural_penalty() == expected


TestMSHRProtocol = MSHRProtocolMachine.TestCase
