"""Helpers to run the ``REPRO_CHECK`` shadow implementations as live oracles.

The production factories (``stack_factory``, ``make_mshr_file``) read the
``REPRO_CHECK`` environment variable at *construction* time, so building a
structure inside :func:`repro_check_enabled` permanently arms its checked
variant — every subsequent operation the state machine performs is verified
by the differential/shadow oracle, regardless of the environment afterwards.

The warmup-boundary machine keeps the variable set for its whole lifetime
instead (via :func:`enable_repro_check` / :func:`restore_repro_check`)
because ``System.reset_stats`` consults it at call time for the
leaked-MSHR-entry quiescence check.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.common.invariants import ENV_VAR


@contextmanager
def repro_check_enabled() -> Iterator[None]:
    """Force ``REPRO_CHECK=1`` for the duration of the block."""
    token = enable_repro_check()
    try:
        yield
    finally:
        restore_repro_check(token)


def enable_repro_check() -> Optional[str]:
    """Set ``REPRO_CHECK=1``; returns the previous value for restoration."""
    old = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "1"
    return old


def restore_repro_check(old: Optional[str]) -> None:
    """Undo :func:`enable_repro_check` given its return value."""
    if old is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = old
