"""Stateful protocol test: one TLB level under iTP, CHiRP and LRU.

Drives a small two-set :class:`TLB` (built under ``REPRO_CHECK=1``, so every
recency-stack operation runs the differential oracle) with interleaved
lookups, inserts (end-of-page-walk refills) and shootdown invalidations
over *both* page sizes, against a residency model that replays the exact
dual-probe key scheme (4 KB probed before 2 MB).

For LRU and iTP the model additionally replays the full per-set MRU→LRU
order — for iTP that means Figure 5 verbatim: instruction inserts at
``MRUpos − N`` with ``Freq = 0``, data inserts at ``LRUpos``, saturated
instruction hits promote to MRU while unsaturated ones re-place at
``MRUpos − N`` and increment ``Freq``, data hits promote to ``LRUpos + M``
— so the insert-depth and saturation invariants hold after every step, not
just on hand-picked sequences.  CHiRP's order depends on its confidence
table, so its machine feeds ``observe_fetch_page`` and checks structural
invariants instead: key-map/entry bijection, stack membership == valid
ways, table counters within ``[0, CONF_MAX]``.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.params import ITPConfig, TLBConfig
from repro.common.stats import LevelStats
from repro.common.types import AccessType, LARGE_PAGE_BITS, PAGE_BITS, PageSize
from repro.tlb.policies.chirp import CONF_MAX, CHiRPPolicy
from repro.tlb.policies.itp import ITPPolicy
from repro.tlb.policies.lru import TLBLRUPolicy
from repro.tlb.tlb import TLB

from . import profiles  # noqa: F401  (registers and loads the settings profile)
from .models import place_above_lru, place_at_depth
from .oracles import repro_check_enabled

ENTRIES = 8
ASSOC = 4
SETS = ENTRIES // ASSOC
ITP = ITPConfig(insert_depth_n=1, data_promote_m=2)
MISS_LATENCY = 10

VPNS = st.integers(min_value=0, max_value=7)
PAGE_SIZES = st.sampled_from([PageSize.SIZE_4K, PageSize.SIZE_2M])
ACCESS_TYPES = st.sampled_from([AccessType.INSTRUCTION, AccessType.DATA])


def _vaddr(vpn, page_size):
    shift = PAGE_BITS if page_size is PageSize.SIZE_4K else LARGE_PAGE_BITS
    return vpn << shift


def _key(vpn, page_size):
    return (vpn << 1) | (1 if page_size is PageSize.SIZE_2M else 0)


class _Entry:
    """Model translation: everything the invariants compare against."""

    __slots__ = ("vpn", "pfn", "page_size", "access_type", "freq")

    def __init__(self, vpn, pfn, page_size, access_type):
        self.vpn = vpn
        self.pfn = pfn
        self.page_size = page_size
        self.access_type = access_type
        self.freq = 0


class TLBProtocolMachine(RuleBasedStateMachine):
    """Residency/statistics model shared by all three policies."""

    replacement = "lru"

    def _make_policy(self):
        raise NotImplementedError

    def __init__(self):
        super().__init__()
        config = TLBConfig(
            "MACHTLB", entries=ENTRIES, associativity=ASSOC, latency=1,
            replacement=self.replacement,
        )
        with repro_check_enabled():
            self.tlb = TLB(config, self._make_policy(), LevelStats("MACHTLB"))
        #: Per set: key -> _Entry, plus the MRU→LRU key order.
        self.entries = [{} for _ in range(SETS)]
        self.order = [[] for _ in range(SETS)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Model policy hooks (LRU; subclasses override for iTP)
    # ------------------------------------------------------------------ #

    def _model_on_insert(self, set_index, key, entry, access_type):
        place_at_depth(self.order[set_index], key, 0)

    def _model_on_hit(self, set_index, key, entry, access_type):
        place_at_depth(self.order[set_index], key, 0)

    # ------------------------------------------------------------------ #
    # Model transitions (replaying the TLB's dual-probe key scheme)
    # ------------------------------------------------------------------ #

    def _model_probe(self, vaddr):
        """4 KB probe first, then 2 MB — exactly like ``TLB.lookup``."""
        for page_size in (PageSize.SIZE_4K, PageSize.SIZE_2M):
            shift = PAGE_BITS if page_size is PageSize.SIZE_4K else LARGE_PAGE_BITS
            vpn = vaddr >> shift
            key = _key(vpn, page_size)
            set_index = vpn & (SETS - 1)
            if key in self.entries[set_index]:
                return set_index, key
        return None

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #

    @rule(vpn=VPNS, page_size=PAGE_SIZES, access_type=ACCESS_TYPES)
    def lookup(self, vpn, page_size, access_type):
        vaddr = _vaddr(vpn, page_size)
        found = self._model_probe(vaddr)
        entry = self.tlb.lookup(vaddr, access_type)
        if found is None:
            assert entry is None
            self.misses += 1
            # The MMU records the miss once the walk latency is known.
            self.tlb.record_miss(access_type, MISS_LATENCY)
            return
        assert entry is not None, f"lookup({vaddr:#x}) missed a resident entry"
        set_index, key = found
        model = self.entries[set_index][key]
        assert (entry.vpn, entry.pfn, entry.page_size) == (
            model.vpn, model.pfn, model.page_size,
        )
        assert entry.access_type is model.access_type
        self.hits += 1
        self._model_on_hit(set_index, key, model, access_type)

    @rule(vpn=VPNS, page_size=PAGE_SIZES, access_type=ACCESS_TYPES)
    def insert(self, vpn, page_size, access_type):
        vaddr = _vaddr(vpn, page_size)
        page_vpn = vaddr >> (
            PAGE_BITS if page_size is PageSize.SIZE_4K else LARGE_PAGE_BITS
        )
        key = _key(page_vpn, page_size)
        set_index = page_vpn & (SETS - 1)
        entries = self.entries[set_index]
        if key in entries:
            model = entries[key]
            model.pfn = page_vpn  # refill overwrites the translation
            model.access_type = access_type
        else:
            if len(entries) >= ASSOC:
                victim_key = self.order[set_index][-1]  # all three evict LRU
                del entries[victim_key]
                self.order[set_index].remove(victim_key)
                self.evictions += 1
            model = _Entry(page_vpn, page_vpn, page_size, access_type)
            entries[key] = model
        returned = self.tlb.insert(vaddr, page_vpn, page_size, access_type)
        self._model_on_insert(set_index, key, model, access_type)
        assert (returned.vpn, returned.pfn) == (page_vpn, page_vpn)

    @rule(vpn=VPNS, page_size=PAGE_SIZES)
    def invalidate(self, vpn, page_size):
        vaddr = _vaddr(vpn, page_size)
        found = self._model_probe(vaddr)  # _find probes 4 KB before 2 MB too
        removed = self.tlb.invalidate(vaddr)
        if found is None:
            assert removed is False
            return
        assert removed is True
        set_index, key = found
        del self.entries[set_index][key]
        self.order[set_index].remove(key)
        self.evictions += 1

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def check_residency_matches_model(self):
        tlb = self.tlb
        assert tlb.occupancy() == sum(len(e) for e in self.entries)
        for set_index in range(SETS):
            key_map = tlb._key_maps[set_index]
            model = self.entries[set_index]
            assert set(key_map) == set(model)
            for key, way in key_map.items():
                entry = tlb.sets[set_index][way]
                assert entry.valid and entry.key == key
                record = model[key]
                assert (entry.vpn, entry.pfn, entry.page_size) == (
                    record.vpn, record.pfn, record.page_size,
                )
                assert entry.access_type is record.access_type

    @invariant()
    def check_stack_membership(self):
        for set_index in range(SETS):
            stack_ways = set(self.tlb.policy.stacks[set_index].order())
            valid_ways = set(self.tlb._key_maps[set_index].values())
            assert stack_ways == valid_ways

    @invariant()
    def check_stats_match_model(self):
        stats = self.tlb.stats
        assert stats.hits == self.hits
        assert stats.misses == self.misses
        assert stats.evictions == self.evictions
        assert stats.accesses == self.hits + self.misses


class OrderedTLBMachine(TLBProtocolMachine):
    """Adds full recency-order replay (policies with deterministic orders)."""

    @invariant()
    def check_order_matches_model(self):
        for set_index in range(SETS):
            key_map = self.tlb._key_maps[set_index]
            way_to_key = {way: key for key, way in key_map.items()}
            stack_keys = [
                way_to_key[way]
                for way in self.tlb.policy.stacks[set_index].order()
            ]
            assert stack_keys == self.order[set_index]


class LRUTLBMachine(OrderedTLBMachine):
    replacement = "lru"

    def _make_policy(self):
        return TLBLRUPolicy(SETS, ASSOC)


class ITPTLBMachine(OrderedTLBMachine):
    """Figure 5 replayed rule-for-rule, including the Freq saturation edge."""

    replacement = "itp"

    def _make_policy(self):
        return ITPPolicy(SETS, ASSOC, ITP)

    def _model_on_insert(self, set_index, key, entry, access_type):
        order = self.order[set_index]
        if access_type is AccessType.INSTRUCTION:
            entry.freq = 0
            place_at_depth(order, key, ITP.insert_depth_n)
        else:
            place_above_lru(order, key, 0)

    def _model_on_hit(self, set_index, key, entry, access_type):
        order = self.order[set_index]
        if access_type is AccessType.INSTRUCTION:
            if entry.freq >= ITP.freq_max:
                place_at_depth(order, key, 0)  # saturated: MRU is earned
            else:
                place_at_depth(order, key, ITP.insert_depth_n)
                entry.freq += 1
        else:
            place_above_lru(order, key, ITP.data_promote_m)

    @invariant()
    def check_freq_matches_model(self):
        for set_index in range(SETS):
            for key, way in self.tlb._key_maps[set_index].items():
                entry = self.tlb.sets[set_index][way]
                model = self.entries[set_index][key]
                assert entry.freq == model.freq
                assert 0 <= entry.freq <= ITP.freq_max, "Freq left its 3-bit range"


class CHiRPTLBMachine(TLBProtocolMachine):
    """Confidence-table-driven order: structural invariants instead of replay.

    The model's recency order is mirrored *from* the real stack after every
    policy hook (CHiRP's insertion depth depends on its confidence table, so
    replaying it would duplicate the implementation).  Victim selection is
    still fully checked: CHiRP inherits plain-LRU eviction, so the mirrored
    ``order[-1]`` must be exactly the entry the TLB evicts — residency and
    statistics stay model-verified.
    """

    replacement = "chirp"

    def _make_policy(self):
        return CHiRPPolicy(SETS, ASSOC)

    def _sync_order(self, set_index):
        way_to_key = {
            way: key for key, way in self.tlb._key_maps[set_index].items()
        }
        self.order[set_index] = [
            way_to_key[way]
            for way in self.tlb.policy.stacks[set_index].order()
        ]

    def _model_on_insert(self, set_index, key, entry, access_type):
        self._sync_order(set_index)

    def _model_on_hit(self, set_index, key, entry, access_type):
        self._sync_order(set_index)

    @rule(vpn=VPNS)
    def observe_fetch_page(self, vpn):
        self.tlb.policy.observe_fetch_page(vpn)

    @invariant()
    def check_confidence_table_bounds(self):
        table = self.tlb.policy.table
        assert all(0 <= conf <= CONF_MAX for conf in table)


TestLRUTLBProtocol = LRUTLBMachine.TestCase
TestITPTLBProtocol = ITPTLBMachine.TestCase
TestCHiRPTLBProtocol = CHiRPTLBMachine.TestCase
