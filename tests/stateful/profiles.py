"""Tiered Hypothesis settings profiles for the stateful protocol suite.

One place to set test intensity, instead of inline ``@settings`` per
machine.  Select a tier with the ``REPRO_HYPOTHESIS_PROFILE`` environment
variable (default ``dev``):

* ``dev``  — fast local feedback: few examples, short rule sequences.
* ``ci``   — the main CI test job: enough state exploration to be a real
  gate without dominating the job's wall clock.
* ``deep`` — the scheduled/label-gated CI job and pre-release runs:
  1000+ examples with long rule sequences, intended to be paired with
  ``REPRO_CHECK=1`` so the shadow oracles run inside every example.

Reproducing a failure: Hypothesis prints the failing rule sequence and a
``reproduce_failure`` blob (``print_blob`` is on in every tier), and the
example database under ``.hypothesis/`` replays known failures first on
the next run — see docs/testing.md for the workflow.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

#: Environment variable naming the active profile.
PROFILE_ENV = "REPRO_HYPOTHESIS_PROFILE"

#: Tier name -> (max_examples, stateful_step_count).
PROFILES = {
    "dev": (25, 30),
    "ci": (150, 50),
    "deep": (1000, 100),
}

for _name, (_examples, _steps) in PROFILES.items():
    settings.register_profile(
        _name,
        max_examples=_examples,
        stateful_step_count=_steps,
        deadline=None,
        # The machines build whole hardware structures per example and the
        # deep tier runs shadow oracles on every operation; wall-clock
        # health checks would only flag the intended thoroughness.
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
        print_blob=True,
    )


def load_active_profile() -> str:
    """Load the profile named by ``REPRO_HYPOTHESIS_PROFILE`` (default dev)."""
    name = os.environ.get(PROFILE_ENV, "dev").strip().lower() or "dev"
    if name not in PROFILES:
        raise ValueError(
            f"unknown {PROFILE_ENV} value {name!r}; available: {', '.join(PROFILES)}"
        )
    settings.load_profile(name)
    return name


ACTIVE_PROFILE = load_active_profile()
