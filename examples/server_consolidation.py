#!/usr/bin/env python
"""SMT co-location study (the scenario of Section 6.1, Figure 8b).

Servers co-locate workloads to raise utilisation; shared TLBs and caches
then become contended.  This example runs the paper's three mix categories
(intense / medium / relaxed STLB pressure) on the two-thread SMT core and
compares the LRU baseline against TDRRIP and iTP+xPTP.

Run:  python examples/server_consolidation.py
"""

from repro import simulate_smt, smt_mixes
from repro.common.params import scaled_config
from repro.experiments.reporting import format_table

TECHNIQUES = {
    "lru": {},
    "tdrrip": {"l2c": "tdrrip"},
    "itp+xptp": {"stlb": "itp", "l2c": "xptp"},
}


def main() -> None:
    base = scaled_config()
    rows = []
    for mix in smt_mixes(per_category=1):
        ipcs = {}
        for name, policies in TECHNIQUES.items():
            cfg = base.with_policies(**policies)
            result = simulate_smt(
                cfg, mix.workloads, warmup_instructions=50_000,
                measure_instructions=150_000, config_label=name,
            )
            ipcs[name] = result.ipc
        rows.append([
            mix.name,
            mix.category,
            ipcs["lru"],
            100.0 * (ipcs["tdrrip"] / ipcs["lru"] - 1.0),
            100.0 * (ipcs["itp+xptp"] / ipcs["lru"] - 1.0),
        ])
        print(f"finished mix {mix.name}")

    print()
    print(format_table(
        ["mix", "category", "lru_ipc", "tdrrip_gain_%", "itp+xptp_gain_%"], rows
    ))
    print()
    print("Expected shape (paper Fig. 8b): iTP+xPTP gives the largest uplift, "
          "biggest for the intense mixes whose combined footprints hammer the "
          "shared STLB.")


if __name__ == "__main__":
    main()
