#!/usr/bin/env python
"""Huge-page sensitivity study (the scenario of Section 6.5, Figure 13).

Operators can back part of a service's footprint with 2 MB pages, but
fragmentation on long-lived servers limits how much (Section 5.1).  This
example sweeps the 2 MB coverage of a server workload and shows how the
value of iTP+xPTP (and of any TLB optimisation) shrinks as huge pages
absorb the STLB misses.

Run:  python examples/huge_pages_study.py
"""

from repro import ServerWorkload, simulate
from repro.common.params import scaled_config
from repro.experiments.reporting import format_table


def main() -> None:
    base = scaled_config()
    proposal = base.with_policies(stlb="itp", l2c="xptp")
    rows = []
    for percent in (0, 10, 50, 100):
        wl = ServerWorkload("hp", seed=77, large_page_percent=percent)
        lru = simulate(base, wl, 50_000, 150_000)
        prop = simulate(proposal, wl, 50_000, 150_000)
        rows.append([
            f"{percent}%",
            lru.get("stlb.mpki"),
            lru.ipc,
            100.0 * (prop.ipc / lru.ipc - 1.0),
        ])
        print(f"finished {percent}% 2MB coverage")

    print()
    print(format_table(
        ["2MB coverage", "baseline_stlb_mpki", "baseline_ipc", "itp+xptp_gain_%"],
        rows,
    ))
    print()
    print("Expected shape (paper Fig. 13): baseline STLB MPKI and the "
          "iTP+xPTP gain both fall as 2 MB coverage grows; the baseline IPC "
          "rises because huge pages eliminate page walks outright.")


if __name__ == "__main__":
    main()
