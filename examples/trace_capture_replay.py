#!/usr/bin/env python
"""Trace capture & bit-identical replay (the artifact-trace workflow).

The paper's artifact ships ChampSim traces; our equivalent captures a
synthetic workload to a compact binary trace file and replays it.  Replay
is deterministic, so captured traces make experiments shareable and
regression-stable even if generator internals change.

Run:  python examples/trace_capture_replay.py
"""

import tempfile
from pathlib import Path

from repro import ServerWorkload, simulate
from repro.common.params import scaled_config
from repro.workloads.trace_io import FileTraceWorkload, capture


def main() -> None:
    workload = ServerWorkload("capture-me", seed=5)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "server.rptr"
        records = capture(workload, path, records=80_000)
        size_kb = path.stat().st_size / 1024
        print(f"captured {records} records to {path.name} ({size_kb:.0f} KiB)")

        replay = FileTraceWorkload(
            "replayed", path, large_page_percent=workload.large_page_percent,
            seed=workload.seed,
        )
        cfg = scaled_config()
        live = simulate(cfg, workload, 40_000, 120_000)
        replayed = simulate(cfg, replay, 40_000, 120_000)

        print(f"live     ipc={live.ipc:.5f} stlb.mpki={live.get('stlb.mpki'):.3f}")
        print(f"replayed ipc={replayed.ipc:.5f} stlb.mpki={replayed.get('stlb.mpki'):.3f}")
        assert abs(live.ipc - replayed.ipc) < 1e-9, "replay must be bit-identical"
        print("replay is bit-identical to the live generator ✓")


if __name__ == "__main__":
    main()
