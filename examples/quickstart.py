#!/usr/bin/env python
"""Quickstart: measure iTP+xPTP against the LRU baseline on one workload.

Builds the scaled Table 1 system twice — once all-LRU, once with iTP at
the STLB and xPTP at the L2C — runs the same big-code server workload on
both, and prints the headline comparison the paper's abstract makes.

Run:  python examples/quickstart.py
"""

from repro import ServerWorkload, simulate
from repro.common.params import scaled_config


def main() -> None:
    # A Qualcomm-server-like workload: multi-MB instruction footprint,
    # large data footprint, heavy STLB pressure (DESIGN.md §3).
    workload = ServerWorkload("quickstart", seed=42)

    baseline = scaled_config()                                    # LRU everywhere
    proposal = baseline.with_policies(stlb="itp", l2c="xptp")     # iTP+xPTP

    print(f"workload: {workload.name} "
          f"(code={workload.code_pages} pages, data={workload.data_pages} pages)")
    print("running LRU baseline...")
    base = simulate(baseline, workload, warmup_instructions=60_000,
                    measure_instructions=200_000, config_label="lru")
    print("running iTP+xPTP...")
    prop = simulate(proposal, workload, warmup_instructions=60_000,
                    measure_instructions=200_000, config_label="itp+xptp")

    speedup = 100.0 * (prop.ipc / base.ipc - 1.0)
    print()
    print(f"{'metric':<28}{'LRU':>12}{'iTP+xPTP':>12}")
    for label, key in [
        ("IPC", "ipc"),
        ("STLB instruction MPKI", "stlb.impki"),
        ("STLB data MPKI", "stlb.dmpki"),
        ("STLB avg miss latency", "stlb.avg_miss_latency"),
        ("L2C data-PTE MPKI", "l2c.dtmpki"),
        ("LLC MPKI", "llc.mpki"),
    ]:
        print(f"{label:<28}{base.get(key):>12.3f}{prop.get(key):>12.3f}")
    print()
    print(f"IPC improvement: {speedup:+.1f}%  "
          "(iTP keeps instruction translations in the STLB; xPTP keeps the "
          "resulting data page walks fed from the L2C)")


if __name__ == "__main__":
    main()
