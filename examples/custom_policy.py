#!/usr/bin/env python
"""Extending the simulator with a custom STLB replacement policy.

The library's policy interfaces are public extension points.  This example
implements SRRIP-for-TLBs as a new STLB policy, registers nothing (policies
can be wired directly), and races it against LRU and iTP on a server
workload — the workflow a researcher prototyping a new TLB policy would
follow.

Run:  python examples/custom_policy.py
"""

from typing import Sequence

from repro import ServerWorkload, simulate
from repro.common.params import scaled_config
from repro.common.types import AccessType
from repro.core.system import System
from repro.core.cpu import Core
from repro.tlb.entry import TLBEntry
from repro.tlb.policies.base import TLBReplacementPolicy

RRPV_MAX = 3


class TLBSRRIPPolicy(TLBReplacementPolicy):
    """Re-reference interval prediction applied to STLB entries.

    Type-oblivious (like LRU/CHiRP): a useful control to show that generic
    scan resistance alone does not recover iTP's instruction-aware gains.
    """

    name = "tlb-srrip"

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self.rrpv = [[RRPV_MAX] * associativity for _ in range(num_sets)]

    def victim(self, set_index: int, entries: Sequence[TLBEntry]) -> int:
        row = self.rrpv[set_index]
        while True:
            for way, value in enumerate(row):
                if value >= RRPV_MAX:
                    return way
            for way in range(self.associativity):
                row[way] += 1

    def on_insert(self, set_index, way, entries, access_type: AccessType) -> None:
        self.rrpv[set_index][way] = RRPV_MAX - 1

    def on_hit(self, set_index, way, entries, access_type: AccessType) -> None:
        self.rrpv[set_index][way] = 0


def run_with_stlb_policy(policy_factory, workload, label):
    """Wire a custom policy object into a freshly built system."""
    from repro.common.stats import LevelStats
    from repro.tlb.tlb import TLB

    config = scaled_config()
    system = System(config, workload.size_policy)
    if policy_factory is not None:
        stlb_cfg = config.stlb
        system.mmu.stlb = TLB(
            stlb_cfg,
            policy_factory(stlb_cfg.num_sets, stlb_cfg.associativity),
            system.stats.level("STLB"),
        )
    core = Core(system)
    stream = workload.record_stream()
    while system.stats.instructions < 50_000:
        core.execute(next(stream))
    system.stats.reset()
    cycles = 0.0
    while system.stats.instructions < 150_000:
        cycles += core.execute(next(stream))
    system.stats.cycles = cycles
    print(f"{label:<12} ipc={system.stats.ipc:.4f} "
          f"stlb impki={system.stats.report()['stlb.impki']:.2f} "
          f"dmpki={system.stats.report()['stlb.dmpki']:.2f}")
    return system.stats.ipc


def main() -> None:
    workload = ServerWorkload("custom", seed=9)
    lru_ipc = run_with_stlb_policy(None, workload, "lru")
    run_with_stlb_policy(TLBSRRIPPolicy, workload, "tlb-srrip")

    # iTP via the standard config path, for reference.
    itp = simulate(
        scaled_config().with_policies(stlb="itp"), workload, 50_000, 150_000
    )
    print(f"{'itp':<12} ipc={itp.ipc:.4f} "
          f"stlb impki={itp.get('stlb.impki'):.2f} dmpki={itp.get('stlb.dmpki'):.2f}")
    print()
    print(f"iTP vs LRU: {100.0 * (itp.ipc / lru_ipc - 1.0):+.1f}%  — "
          "type-awareness, not just scan resistance, is what pays off.")


if __name__ == "__main__":
    main()
