#!/usr/bin/env python
"""Extending the simulator with a custom STLB replacement policy.

The library's policy interfaces are public extension points.  This example
implements SRRIP-for-TLBs as a new STLB policy, registers it on the TLB
policy registry under the name ``tlb-srrip``, and races it against LRU and
iTP on a server workload — the workflow a researcher prototyping a new TLB
policy would follow.

Registration is the whole integration story: once the name exists in
:data:`repro.tlb.policies.registry.TLB_POLICIES`, every construction path —
``SystemConfig.with_policies``, topology specs, the experiment drivers —
can use it like a built-in.

Run:  python examples/custom_policy.py
"""

from typing import Sequence

from repro import ServerWorkload, simulate
from repro.common.params import scaled_config
from repro.common.types import AccessType
from repro.tlb.entry import TLBEntry
from repro.tlb.policies.base import TLBReplacementPolicy
from repro.tlb.policies.registry import TLB_POLICIES

RRPV_MAX = 3


class TLBSRRIPPolicy(TLBReplacementPolicy):
    """Re-reference interval prediction applied to STLB entries.

    Type-oblivious (like LRU/CHiRP): a useful control to show that generic
    scan resistance alone does not recover iTP's instruction-aware gains.
    """

    name = "tlb-srrip"

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self.rrpv = [[RRPV_MAX] * associativity for _ in range(num_sets)]

    def victim(self, set_index: int, entries: Sequence[TLBEntry]) -> int:
        row = self.rrpv[set_index]
        while True:
            for way, value in enumerate(row):
                if value >= RRPV_MAX:
                    return way
            for way in range(self.associativity):
                row[way] += 1

    def on_insert(self, set_index, way, entries, access_type: AccessType) -> None:
        self.rrpv[set_index][way] = RRPV_MAX - 1

    def on_hit(self, set_index, way, entries, access_type: AccessType) -> None:
        self.rrpv[set_index][way] = 0


# One line of integration: factories receive (num_sets, associativity,
# **context) — context carries SystemConfig-derived keywords (itp_config,
# p_evict_data, ...) that this policy does not need.
TLB_POLICIES.register(
    "tlb-srrip",
    lambda num_sets, associativity, **_ctx: TLBSRRIPPolicy(num_sets, associativity),
)


def run_with_stlb_policy(policy_name, workload):
    """Run the standard driver with the STLB policy selected by name."""
    config = scaled_config().with_policies(stlb=policy_name)
    result = simulate(config, workload, 50_000, 150_000, config_label=policy_name)
    print(f"{policy_name:<12} ipc={result.ipc:.4f} "
          f"stlb impki={result.get('stlb.impki'):.2f} "
          f"dmpki={result.get('stlb.dmpki'):.2f}")
    return result.ipc


def main() -> None:
    workload = ServerWorkload("custom", seed=9)
    lru_ipc = run_with_stlb_policy("lru", workload)
    run_with_stlb_policy("tlb-srrip", workload)
    itp_ipc = run_with_stlb_policy("itp", workload)
    print()
    print(f"iTP vs LRU: {100.0 * (itp_ipc / lru_ipc - 1.0):+.1f}%  — "
          "type-awareness, not just scan resistance, is what pays off.")


if __name__ == "__main__":
    main()
