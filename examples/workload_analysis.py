#!/usr/bin/env python
"""Offline workload analysis (the Section 3 motivation study, without simulation).

Uses the analysis toolkit to characterise a server-like and a SPEC-like
workload — footprints, access mix, and single-pass Mattson stack-distance
TLB size sweeps — then bounds an STLB's achievable hit rate with Belady's
MIN.  This reproduces the reasoning behind Figures 1–2 analytically.

Run:  python examples/workload_analysis.py
"""

import itertools

from repro import ServerWorkload, SpecLikeWorkload
from repro.analysis import belady_min, characterize
from repro.common.types import PAGE_BYTES
from repro.experiments.reporting import format_table

RECORDS = 40_000


def main() -> None:
    workloads = [ServerWorkload("server", seed=3), SpecLikeWorkload("spec", seed=3)]
    characters = [characterize(wl, records=RECORDS) for wl in workloads]

    rows = [
        [
            c.name,
            c.code_pages,
            f"{c.code_bytes / 1024:.0f} KiB",
            c.data_pages,
            f"{c.loads_per_kilo_instruction:.0f}",
        ]
        for c in characters
    ]
    print(format_table(
        ["workload", "code pages", "code bytes", "data pages", "loads/ki"], rows
    ))

    print("\nITLB MPKI estimate vs size (fully-associative LRU, one Mattson pass):")
    sizes = (8, 16, 32, 64, 128, 256)
    rows = [
        [c.name] + [f"{c.itlb_mpki_estimate(s):.2f}" for s in sizes] for c in characters
    ]
    print(format_table(["workload"] + [str(s) for s in sizes], rows))
    print("-> the paper's Figure 1 contrast: server instruction footprints "
          "need orders of magnitude more ITLB reach than SPEC.")

    # Belady bound on the instruction page stream: how much could ANY STLB
    # replacement policy (including iTP) possibly save?
    print("\nOffline-optimal (Belady MIN) instruction-page miss rates:")
    rows = []
    for wl, c in zip(workloads, characters):
        pages = [
            r.pc // PAGE_BYTES
            for r in itertools.islice(wl.record_stream(), RECORDS)
        ]
        for capacity in (96, 384):
            result = belady_min(pages, capacity)
            rows.append([wl.name, capacity, f"{100 * result.miss_rate:.2f}%"])
    print(format_table(["workload", "capacity (pages)", "MIN miss rate"], rows))
    print("-> iTP's headroom: the gap between LRU-under-data-pressure and "
          "these bounds is what instruction prioritisation can recover.")


if __name__ == "__main__":
    main()
