#!/usr/bin/env python
"""Multicore consolidation scaling (extension; multi-programmed, non-SMT).

Runs 1, 2 and 4 server workloads on the multicore substrate — private
L1/L2/TLB hierarchies, shared LLC and DRAM — and shows how aggregate
throughput scales as the shared levels saturate, with and without
iTP+xPTP on each core.

Run:  python examples/multicore_scaling.py
"""

from repro import ServerWorkload, scaled_config
from repro.core.multicore import simulate_multicore
from repro.experiments.reporting import format_table


def workloads(n):
    return [
        ServerWorkload(f"w{i}", seed=60 + i, code_pages=256, data_pages=6000,
                       hot_data_pages=96, warm_pages=1600, local_pages=32)
        for i in range(n)
    ]


def main() -> None:
    base = scaled_config()
    prop = base.with_policies(stlb="itp", l2c="xptp")
    rows = []
    for cores in (1, 2, 4):
        wls = workloads(cores)
        measure = 60_000 * cores
        lru = simulate_multicore(base, wls, 20_000 * cores, measure)
        itp = simulate_multicore(prop, wls, 20_000 * cores, measure)
        rows.append([
            cores,
            lru.ipc,
            lru.get("llc.mpki"),
            100.0 * (itp.ipc / lru.ipc - 1.0),
        ])
        print(f"finished {cores} core(s)")
    print()
    print(format_table(
        ["cores", "aggregate_ipc (LRU)", "llc_mpki", "itp+xptp_gain_%"], rows
    ))
    print()
    print("Aggregate IPC grows sub-linearly as the shared LLC and DRAM "
          "bandwidth saturate; iTP+xPTP keeps helping each core's private "
          "STLB/L2C regardless of core count.")


if __name__ == "__main__":
    main()
